package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"knncost/internal/catalog"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/ptloc"
	"knncost/internal/quadtree"
)

// StaircaseMode selects between the two variants evaluated in §5.1.
type StaircaseMode int

const (
	// ModeCenterCorners estimates with Equations 1–2: the center-catalog
	// cost interpolated toward the corners-catalog cost by the query
	// point's distance from the block center. Higher accuracy, two
	// lookups, five catalogs built per block (merged to two).
	ModeCenterCorners StaircaseMode = iota
	// ModeCenterOnly estimates with the center-catalog alone: one lookup,
	// one catalog per block, slightly lower accuracy.
	ModeCenterOnly
	// ModeCenterQuadrant is an extension beyond the paper (an ablation of
	// its corner-merge design choice): the four corner catalogs are kept
	// separate and the interpolation uses the corner of the quadrant the
	// query point falls in, instead of the maximum over all corners.
	// More accurate for queries near a cheap corner, at 2.5x the storage
	// of ModeCenterCorners.
	ModeCenterQuadrant
)

// String implements fmt.Stringer.
func (m StaircaseMode) String() string {
	switch m {
	case ModeCenterCorners:
		return "Center+Corners"
	case ModeCenterOnly:
		return "Center-Only"
	case ModeCenterQuadrant:
		return "Center+Quadrant"
	default:
		return fmt.Sprintf("StaircaseMode(%d)", int(m))
	}
}

// DefaultMaxK is the default largest k maintained in catalogs. The paper
// uses 10,000 with blocks of capacity 10,000; the default here preserves
// the MAX_K-to-capacity ratio at this repository's scaled-down defaults.
// Queries with larger k fall back to the density-based technique (Fig. 5).
const DefaultMaxK = 1000

// StaircaseOptions configure BuildStaircase.
type StaircaseOptions struct {
	// MaxK is the largest k the catalogs cover. Zero means DefaultMaxK.
	MaxK int
	// Mode selects the estimation variant. The zero value is
	// ModeCenterCorners.
	Mode StaircaseMode
	// AuxCapacity is the leaf capacity used when an auxiliary quadtree
	// must be built because the data index is not space-partitioning
	// (§3.3). Zero means the quadtree package default.
	AuxCapacity int
	// Fallback handles queries with k > MaxK or outside the auxiliary
	// index bounds. Nil means a DensityBased estimator over the data
	// index's Count-Index, matching Figure 5.
	Fallback SelectEstimator
	// Parallelism is the number of goroutines building per-block catalogs
	// concurrently. Zero means GOMAXPROCS; 1 forces a serial build.
	// Catalogs are independent, so the result is identical regardless.
	Parallelism int
}

// Staircase is the paper's k-NN-Select cost estimator (§3). For every block
// of a space-partitioning auxiliary index it keeps a center-catalog and
// (in ModeCenterCorners) a corners-catalog — the maximum over the four
// corner catalogs — each built by Procedure 1. A query locates its block,
// looks up both catalogs, and interpolates with Equations 1 and 2.
// A Staircase is immutable after construction and safe for concurrent use
// (assuming its fallback estimator is too, which the default DensityBased
// is); EstimateSelectBatch fans queries out over it freely.
type Staircase struct {
	aux      *index.Tree
	loc      *ptloc.Grid           // O(1) point location over aux leaf blocks
	center   []*catalog.Catalog    // indexed by aux block ID
	corners  []*catalog.Catalog    // merged max; nil unless ModeCenterCorners
	quads    [][4]*catalog.Catalog // per-corner; nil unless ModeCenterQuadrant
	mode     StaircaseMode
	maxK     int
	fallback SelectEstimator
	pin      any // keeps a borrowed mapping alive; see Pin
}

// stairScratch is the per-goroutine working set of the staircase builder:
// one re-seedable browser plus four scratch catalogs for the corner
// temporaries that are discarded after the max-merge. Pooling it means a
// build allocates only what it retains (the per-block center/corner
// catalogs), not per-anchor traversal state. A pooled scratch must not
// escape the goroutine that took it.
type stairScratch struct {
	browser knn.Browser
	corner  [4]catalog.Catalog
	cats    [4]*catalog.Catalog
}

var stairScratchPool = sync.Pool{New: func() any { return new(stairScratch) }}

// BuildStaircase precomputes the staircase catalogs for the given data
// index. When the data index is space-partitioning (quadtree, grid) the
// catalogs attach to its own blocks; otherwise (R-tree) a quadtree auxiliary
// index is built over the same points, as §3.3 prescribes, so that every
// query point falls inside some block.
func BuildStaircase(data *index.Tree, opt StaircaseOptions) (*Staircase, error) {
	if data.NumBlocks() == 0 {
		return nil, errors.New("core: cannot build staircase over empty index")
	}
	if opt.MaxK == 0 {
		opt.MaxK = DefaultMaxK
	}
	if opt.MaxK < 1 {
		return nil, fmt.Errorf("core: invalid MaxK %d", opt.MaxK)
	}
	aux := data
	if !data.Partitioning() {
		aux = auxiliaryIndex(data, opt.AuxCapacity)
	}
	s := &Staircase{
		aux:      aux,
		loc:      ptloc.Build(aux),
		mode:     opt.Mode,
		maxK:     opt.MaxK,
		fallback: opt.Fallback,
	}
	if s.fallback == nil {
		s.fallback = NewDensityBased(data.CountTree())
	}
	s.center = make([]*catalog.Catalog, aux.NumBlocks())
	switch opt.Mode {
	case ModeCenterCorners:
		s.corners = make([]*catalog.Catalog, aux.NumBlocks())
	case ModeCenterQuadrant:
		s.quads = make([][4]*catalog.Catalog, aux.NumBlocks())
	}
	buildBlock := func(b *index.Block) error {
		// One pooled scratch serves all five anchors of the block: the
		// browser is re-seeded per anchor and the four corner catalogs are
		// built into reusable scratch space, since only their max-merge is
		// retained.
		scratch := stairScratchPool.Get().(*stairScratch)
		defer stairScratchPool.Put(scratch)
		center := &catalog.Catalog{}
		buildSelectCatalogInto(center, &scratch.browser, data, b.Bounds.Center(), opt.MaxK)
		s.center[b.ID] = center
		switch opt.Mode {
		case ModeCenterCorners:
			for i, c := range b.Bounds.Corners() {
				buildSelectCatalogInto(&scratch.corner[i], &scratch.browser, data, c, opt.MaxK)
				scratch.cats[i] = &scratch.corner[i]
			}
			merged, err := catalog.MergeMax(scratch.cats[:])
			if err != nil {
				return fmt.Errorf("core: merging corner catalogs of block %d: %w", b.ID, err)
			}
			s.corners[b.ID] = merged
		case ModeCenterQuadrant:
			for i, c := range b.Bounds.Corners() {
				quad := &catalog.Catalog{}
				buildSelectCatalogInto(quad, &scratch.browser, data, c, opt.MaxK)
				s.quads[b.ID][i] = quad
			}
		}
		return nil
	}
	if err := forEachBlock(aux.Blocks(), opt.Parallelism, buildBlock); err != nil {
		return nil, err
	}
	return s, nil
}

// forEachBlock runs fn over blocks with the given parallelism (0 means
// GOMAXPROCS). Each block writes only its own catalog slots, so no
// synchronization beyond the WaitGroup is needed; the first error wins.
func forEachBlock(blocks []*index.Block, parallelism int, fn func(*index.Block) error) error {
	return forEachIndexed(len(blocks), parallelism, func(i int) error {
		return fn(blocks[i])
	})
}

// forEachIndexed runs fn(0..n-1) with the given parallelism (0 or negative
// means GOMAXPROCS; 1 forces a serial loop). It is the worker fan-out shared
// by the catalog builders and the batch estimation APIs: callers guarantee
// that fn(i) touches only slot i of any shared output, so no synchronization
// beyond the WaitGroup is needed. The first error cancels remaining work and
// is returned.
func forEachIndexed(n, parallelism int, fn func(int) error) error {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		firstErr atomic.Value
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || firstErr.Load() != nil {
					return
				}
				if err := fn(i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return err.(error)
	}
	return nil
}

// auxiliaryIndex builds a space-partitioning quadtree over the points of a
// non-partitioning data index.
func auxiliaryIndex(data *index.Tree, capacity int) *index.Tree {
	pts := make([]geom.Point, 0, data.NumPoints())
	for _, b := range data.Blocks() {
		pts = append(pts, b.Points...)
	}
	return quadtree.Build(pts, quadtree.Options{Capacity: capacity}).Index()
}

// EstimateSelect implements SelectEstimator. Queries with k in [1, MaxK]
// that fall inside the auxiliary index are answered from the catalogs;
// anything else routes to the fallback estimator, mirroring the query flow
// of Figure 5.
//
// The catalog path performs zero heap allocations: block resolution is an
// O(1) lookup in a flat point-location grid (not a tree descent) and the
// catalog lookups are closure-free binary searches. A test pins this.
func (s *Staircase) EstimateSelect(q geom.Point, k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("core: k must be >= 1")
	}
	if k > s.maxK {
		return s.fallback.EstimateSelect(q, k)
	}
	blk := s.loc.Find(q)
	if blk == nil {
		return s.fallback.EstimateSelect(q, k)
	}
	cCenter, ok := s.center[blk.ID].Lookup(k)
	if !ok {
		return 0, fmt.Errorf("core: center catalog of block %d missing k=%d", blk.ID, k)
	}
	if s.mode == ModeCenterOnly {
		return float64(cCenter), nil
	}
	var cornerCat *catalog.Catalog
	if s.mode == ModeCenterQuadrant {
		cornerCat = s.quads[blk.ID][quadrantCorner(blk.Bounds, q)]
	} else {
		cornerCat = s.corners[blk.ID]
	}
	cCorner, ok := cornerCat.Lookup(k)
	if !ok {
		return 0, fmt.Errorf("core: corners catalog of block %d missing k=%d", blk.ID, k)
	}
	// Equations 1 and 2: cost = C_center + (2L / Diagonal) * Δ.
	l := q.Dist(blk.Bounds.Center())
	diag := blk.Bounds.Diagonal()
	if diag == 0 {
		return float64(cCenter), nil
	}
	delta := float64(cCorner - cCenter)
	return float64(cCenter) + 2*l/diag*delta, nil
}

// quadrantCorner returns the index into Rect.Corners() of the corner in
// the same quadrant as q: Corners() orders them LL, LR, UR, UL.
func quadrantCorner(b geom.Rect, q geom.Point) int {
	c := b.Center()
	east := q.X >= c.X
	north := q.Y >= c.Y
	switch {
	case !east && !north:
		return 0 // lower-left
	case east && !north:
		return 1 // lower-right
	case east && north:
		return 2 // upper-right
	default:
		return 3 // upper-left
	}
}

// MaxK returns the largest catalog-served k.
func (s *Staircase) MaxK() int { return s.maxK }

// Mode returns the estimation variant.
func (s *Staircase) Mode() StaircaseMode { return s.mode }

// NumBlocks returns the number of auxiliary blocks carrying catalogs.
func (s *Staircase) NumBlocks() int { return s.aux.NumBlocks() }

// StorageBytes returns the total serialized size of all catalogs — the
// storage-overhead metric of Figure 14.
func (s *Staircase) StorageBytes() int {
	total := 0
	for _, c := range s.center {
		total += c.StorageBytes()
	}
	for _, c := range s.corners {
		total += c.StorageBytes()
	}
	for _, q := range s.quads {
		for _, c := range q {
			total += c.StorageBytes()
		}
	}
	return total
}

// CenterCatalog exposes the center-catalog of the block containing p, for
// inspection and the Figure 4 experiment. It returns nil when p is outside
// the auxiliary index.
func (s *Staircase) CenterCatalog(p geom.Point) *catalog.Catalog {
	blk := s.loc.Find(p)
	if blk == nil {
		return nil
	}
	return s.center[blk.ID]
}

// EstimateSelectBatch answers many k-NN-Select cost queries with a worker
// fan-out over the shared read-only catalogs. See the package-level
// EstimateSelectBatch for the contract.
func (s *Staircase) EstimateSelectBatch(queries []SelectQuery, parallelism int) []SelectResult {
	return EstimateSelectBatch(s, queries, parallelism)
}
