package core

import (
	"context"

	"knncost/internal/geom"
)

// SelectQuery is one k-NN-Select cost question in a batch: the query point
// and the number of neighbors.
type SelectQuery struct {
	Point geom.Point
	K     int
}

// SelectResult is the answer to one SelectQuery. Exactly one of Blocks and
// Err is meaningful: a failed query carries its own error and does not
// affect the rest of the batch.
type SelectResult struct {
	Blocks float64
	Err    error
}

// EstimateSelectBatch answers queries[i] into result[i] using a worker
// fan-out with the given parallelism (0 or negative means GOMAXPROCS, 1
// forces a serial loop). The estimator must be safe for concurrent use —
// every estimator in this package is, being read-only after construction —
// and results are identical to len(queries) sequential EstimateSelect calls
// regardless of parallelism. Per-query failures are isolated in the
// corresponding SelectResult.Err; the batch itself never fails.
func EstimateSelectBatch(est SelectEstimator, queries []SelectQuery, parallelism int) []SelectResult {
	results := make([]SelectResult, len(queries))
	// fn only writes slot i and never returns an error, so the fan-out
	// cannot short-circuit and every query is answered.
	_ = forEachIndexed(len(queries), parallelism, func(i int) error {
		blocks, err := est.EstimateSelect(queries[i].Point, queries[i].K)
		results[i] = SelectResult{Blocks: blocks, Err: err}
		return nil
	})
	return results
}

// EstimateSelectBatchContext is EstimateSelectBatch with cancellation: the
// context is checked before every query, so a large batch stops promptly on
// deadline or cancel instead of finishing tens of thousands of estimates
// nobody will read. On cancellation it returns the context's error; the
// results slice is partial (unanswered slots are zero-valued) and must not
// be served. Per-query estimator failures still do not fail the batch.
func EstimateSelectBatchContext(ctx context.Context, est SelectEstimator, queries []SelectQuery, parallelism int) ([]SelectResult, error) {
	results := make([]SelectResult, len(queries))
	err := forEachIndexed(len(queries), parallelism, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		blocks, err := est.EstimateSelect(queries[i].Point, queries[i].K)
		results[i] = SelectResult{Blocks: blocks, Err: err}
		return nil
	})
	if err != nil {
		return results, err
	}
	return results, nil
}
