package core

import (
	"errors"
	"math"
	"sync"

	"knncost/internal/geom"
	"knncost/internal/index"
)

// DensityBased estimates k-NN-Select cost with the technique of Tao et al.
// (paper ref [24]), as described in §2: assuming points are uniformly
// distributed within each block, it grows a circle around the query point —
// scanning Count-Index blocks in MINDIST order and combining their
// densities — until the circle of radius D_k estimated to contain k points
// is covered by the examined blocks. The estimated cost is then the number
// of blocks overlapping that circle.
//
// The growth scan already visits blocks in non-decreasing MINDIST order, so
// the overlap count falls out of the same pass: every block whose recorded
// MINDIST does not exceed the final radius overlaps the circle, and the
// stopping condition guarantees no unvisited block does. §2 describes this
// as two scans; a regression test pins the single-pass estimate to the
// two-pass formulation.
//
// It keeps no catalogs: preprocessing and storage are (near) zero, but every
// estimate walks the Count-Index, which is what the staircase technique
// beats by two orders of magnitude in Figure 12.
//
// A DensityBased estimator is stateless apart from pooled per-call scratch
// and is safe for concurrent use.
type DensityBased struct {
	count *index.Tree
}

// densityScratch is the per-call working set: the MINDIST scan heap and the
// recorded block distances, pooled so steady-state estimates stop
// re-allocating them. A pooled scratch must not escape the goroutine that
// took it.
type densityScratch struct {
	scan  index.Scan
	dists []float64
}

var densityScratchPool = sync.Pool{New: func() any { return new(densityScratch) }}

// NewDensityBased creates the estimator over a Count-Index (a data index
// works too; only bounds and counts are read).
func NewDensityBased(countIx *index.Tree) *DensityBased {
	return &DensityBased{count: countIx}
}

// EstimateSelect implements SelectEstimator.
func (d *DensityBased) EstimateSelect(q geom.Point, k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("core: k must be >= 1")
	}
	if d.count.NumBlocks() == 0 {
		return 0, errors.New("core: empty index")
	}
	scratch := densityScratchPool.Get().(*densityScratch)
	defer densityScratchPool.Put(scratch)
	scratch.scan.Reset(d.count, q)
	scratch.dists = scratch.dists[:0]

	// Grow the search region block by block until the circle containing k
	// points (under the combined-density assumption) fits within the
	// examined blocks, recording each block's MINDIST as it is consumed.
	var area float64
	count := 0
	radius := 0.0
	covered := false
	for {
		blk, minDist, ok := scratch.scan.Next()
		if !ok {
			break
		}
		scratch.dists = append(scratch.dists, minDist)
		area += blk.Bounds.Area()
		count += blk.Count
		if count == 0 {
			continue
		}
		density := float64(count) / area
		r := math.Sqrt(float64(k) / (math.Pi * density))
		// The circle is covered by the examined blocks exactly when no
		// unexamined block can intersect it: the next MINDIST exceeds
		// the radius. (Blocks partition space, so "not intersecting any
		// unexamined block" is the containment test of §2.)
		next, more := scratch.scan.PeekDist()
		if !more || next > r {
			radius, covered = r, true
			break
		}
	}
	if !covered {
		// Fewer than k points in the whole index: distance browsing
		// scans everything.
		return float64(d.count.NumBlocks()), nil
	}
	// Count the blocks overlapping the circle. dists is non-decreasing (the
	// scan is best-first), so the overlapping blocks are a prefix; late
	// blocks consumed while the estimated radius was larger do not count.
	cost := 0
	for _, dist := range scratch.dists {
		if dist > radius {
			break
		}
		cost++
	}
	if cost == 0 {
		cost = 1 // the block containing q is always scanned
	}
	return float64(cost), nil
}

// estimateSelectTwoPass is the literal two-scan formulation of §2
// (estimateRadius followed by a fresh MINDIST overlap scan). It is retained
// only as the reference the single-pass EstimateSelect is tested against.
func (d *DensityBased) estimateSelectTwoPass(q geom.Point, k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("core: k must be >= 1")
	}
	if d.count.NumBlocks() == 0 {
		return 0, errors.New("core: empty index")
	}
	radius, ok := d.estimateRadius(q, k)
	if !ok {
		return float64(d.count.NumBlocks()), nil
	}
	cost := 0
	scan := d.count.ScanMinDist(q)
	for {
		_, minDist, ok := scan.Next()
		if !ok || minDist > radius {
			break
		}
		cost++
	}
	if cost == 0 {
		cost = 1
	}
	return float64(cost), nil
}

// estimateRadius grows the search region block by block until the circle
// containing k points (under the combined-density assumption) fits within
// the examined blocks. It reports ok=false when the index holds fewer than
// k points.
func (d *DensityBased) estimateRadius(q geom.Point, k int) (float64, bool) {
	scan := d.count.ScanMinDist(q)
	var area float64
	count := 0
	for {
		blk, _, ok := scan.Next()
		if !ok {
			return 0, false
		}
		area += blk.Bounds.Area()
		count += blk.Count
		if count == 0 {
			continue
		}
		density := float64(count) / area
		radius := math.Sqrt(float64(k) / (math.Pi * density))
		next, more := scan.PeekDist()
		if !more || next > radius {
			return radius, true
		}
	}
}
