package core

import (
	"math"
	"math/rand"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/rtree"
)

// errRatio is the paper's accuracy metric: |est - actual| / actual.
func errRatio(est, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return math.Abs(est-actual) / actual
}

func TestStaircaseExactAtBlockCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64)
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 300})
	if err != nil {
		t.Fatal(err)
	}
	// At a block center, L = 0, so the interpolation returns exactly the
	// center-catalog cost, which is the exact distance-browsing cost.
	for _, b := range data.Blocks()[:10] {
		c := b.Bounds.Center()
		for _, k := range []int{1, 10, 100, 300} {
			est, err := s.EstimateSelect(c, k)
			if err != nil {
				t.Fatal(err)
			}
			want := float64(knn.SelectCost(data, c, k))
			if est != want {
				t.Errorf("center %v k=%d: estimate %g, exact %g", c, k, est, want)
			}
		}
	}
}

func TestStaircaseCenterOnlyUsesBlockCenterCost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(randPoints(rng, 2000, bounds), bounds, 64)
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 200, Mode: ModeCenterOnly})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 31.7, Y: 62.3}
	blk := data.Find(q)
	if blk == nil {
		t.Fatal("query not located")
	}
	want := float64(knn.SelectCost(data, blk.Bounds.Center(), 50))
	got, err := s.EstimateSelect(q, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("center-only estimate %g, want center cost %g", got, want)
	}
}

func TestStaircaseInterpolationBounds(t *testing.T) {
	// Within a block, the estimate must lie between C_center and
	// C_center + 2Δ (it equals C_corner exactly at half-diagonal
	// distance and can exceed it only beyond the corners).
	rng := rand.New(rand.NewSource(3))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 2500, bounds), bounds, 64)
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 200})
	if err != nil {
		t.Fatal(err)
	}
	k := 80
	for trial := 0; trial < 200; trial++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		blk := data.Find(q)
		if blk == nil {
			continue
		}
		center := blk.Bounds.Center()
		cCenter, _ := s.center[blk.ID].Lookup(k)
		cCorner, _ := s.corners[blk.ID].Lookup(k)
		est, err := s.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		// Δ may be negative on skewed data (a corner can be cheaper than
		// the center); the estimate must lie between the two extremes of
		// Equation 1 evaluated at L = 0 and L = diagonal.
		lo := float64(cCenter)
		hi := float64(cCenter) + 2*float64(cCorner-cCenter) // at L = diagonal
		if hi < lo {
			lo, hi = hi, lo
		}
		if est < lo-1e-9 || est > hi+1e-9 {
			t.Fatalf("estimate %g outside [%g,%g] for q=%v center=%v", est, lo, hi, q, center)
		}
	}
}

func TestStaircaseFallbackBeyondMaxK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(randPoints(rng, 3000, bounds), bounds, 32)
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 50})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 50, Y: 50}
	est, err := s.EstimateSelect(q, 2000)
	if err != nil {
		t.Fatal(err)
	}
	density, err := NewDensityBased(data.CountTree()).EstimateSelect(q, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if est != density {
		t.Errorf("k>MaxK estimate %g should equal density fallback %g", est, density)
	}
}

func TestStaircaseOutsideBoundsFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bounds := geom.NewRect(0, 0, 10, 10)
	data := buildIx(randPoints(rng, 500, bounds), bounds, 32)
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateSelect(geom.Point{X: 50, Y: 50}, 10); err != nil {
		t.Errorf("out-of-bounds query should fall back, got error %v", err)
	}
}

func TestStaircaseRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bounds := geom.NewRect(0, 0, 10, 10)
	data := buildIx(randPoints(rng, 100, bounds), bounds, 16)
	if _, err := BuildStaircase(data, StaircaseOptions{MaxK: -3}); err == nil {
		t.Error("negative MaxK should be rejected")
	}
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateSelect(geom.Point{X: 1, Y: 1}, 0); err == nil {
		t.Error("k=0 should be rejected")
	}
}

func TestStaircaseOnRTreeBuildsAuxIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := clusteredPoints(rng, 2000, bounds)
	rt, err := rtree.Build(pts, rtree.Options{LeafCapacity: 64, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	data := rt.Index()
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 100, AuxCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	// The auxiliary index must be separate and space-partitioning.
	if s.aux == data {
		t.Fatal("R-tree data index reused as auxiliary index")
	}
	if !s.aux.Partitioning() {
		t.Fatal("auxiliary index must be space-partitioning")
	}
	// Estimates against the R-tree must still track actual costs.
	var totalErr float64
	n := 50
	for i := 0; i < n; i++ {
		q := pts[rng.Intn(len(pts))]
		est, err := s.EstimateSelect(q, 50)
		if err != nil {
			t.Fatal(err)
		}
		actual := float64(knn.SelectCost(data, q, 50))
		totalErr += errRatio(est, actual)
	}
	if avg := totalErr / float64(n); avg > 0.6 {
		t.Errorf("average error ratio %.2f too high for R-tree staircase", avg)
	}
}

// Staircase accuracy on clustered data should beat a loose threshold and
// the Center+Corners variant should not be (much) worse than Center-Only on
// average — the paper's Figure 11 ordering.
func TestStaircaseAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := clusteredPoints(rng, 8000, bounds)
	data := buildIx(pts, bounds, 128)
	cc, err := BuildStaircase(data, StaircaseOptions{MaxK: 400, Mode: ModeCenterCorners})
	if err != nil {
		t.Fatal(err)
	}
	co, err := BuildStaircase(data, StaircaseOptions{MaxK: 400, Mode: ModeCenterOnly})
	if err != nil {
		t.Fatal(err)
	}
	queries := 200
	var errCC, errCO float64
	for i := 0; i < queries; i++ {
		q := pts[rng.Intn(len(pts))]
		k := 1 + rng.Intn(400)
		actual := float64(knn.SelectCost(data, q, k))
		e1, err := cc.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := co.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		errCC += errRatio(e1, actual)
		errCO += errRatio(e2, actual)
	}
	avgCC, avgCO := errCC/float64(queries), errCO/float64(queries)
	t.Logf("staircase error: center+corners %.3f, center-only %.3f", avgCC, avgCO)
	if avgCC > 0.35 {
		t.Errorf("center+corners error ratio %.3f exceeds 0.35", avgCC)
	}
	if avgCO > 0.5 {
		t.Errorf("center-only error ratio %.3f exceeds 0.50", avgCO)
	}
}

func TestDensityBasedOnUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rng, 5000, bounds)
	data := buildIx(pts, bounds, 64)
	d := NewDensityBased(data.CountTree())
	var total float64
	n := 100
	for i := 0; i < n; i++ {
		q := geom.Point{X: 10 + rng.Float64()*80, Y: 10 + rng.Float64()*80}
		k := 1 + rng.Intn(200)
		est, err := d.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		total += errRatio(est, float64(knn.SelectCost(data, q, k)))
	}
	if avg := total / float64(n); avg > 0.5 {
		t.Errorf("density-based error ratio %.3f on uniform data exceeds 0.5", avg)
	}
}

func TestDensityBasedKBeyondDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	bounds := geom.NewRect(0, 0, 10, 10)
	data := buildIx(randPoints(rng, 100, bounds), bounds, 16)
	d := NewDensityBased(data.CountTree())
	est, err := d.EstimateSelect(geom.Point{X: 5, Y: 5}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if est != float64(data.NumBlocks()) {
		t.Errorf("k beyond dataset: estimate %g, want all %d blocks", est, data.NumBlocks())
	}
}

func TestSampleBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bounds := geom.NewRect(0, 0, 100, 100)
	tr := buildIx(randPoints(rng, 5000, bounds), bounds, 32)
	n := numJoinBlocks(tr) // sampling draws from non-empty blocks only
	if n == 0 || n > tr.NumBlocks() {
		t.Fatalf("unexpected non-empty block count %d of %d", n, tr.NumBlocks())
	}
	for _, s := range []int{1, 2, 10, n - 1, n, n + 10, 0, -1} {
		got := SampleBlocks(tr, s)
		want := s
		if s <= 0 || s >= n {
			want = n
		}
		if len(got) != want {
			t.Errorf("SampleBlocks(%d) returned %d blocks, want %d", s, len(got), want)
		}
		seen := map[int]bool{}
		for _, b := range got {
			if b.Count == 0 {
				t.Errorf("SampleBlocks(%d) returned empty block %d", s, b.ID)
			}
			if seen[b.ID] {
				t.Errorf("SampleBlocks(%d) returned duplicate block %d", s, b.ID)
			}
			seen[b.ID] = true
		}
	}
}

func TestBlockSampleExactWithFullSample(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(randPoints(rng, 1000, bounds), bounds, 64).CountTree()
	inner := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64).CountTree()
	bs := NewBlockSample(outer, inner, 0) // full sample
	for _, k := range []int{1, 10, 100} {
		est, err := bs.EstimateJoin(k)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(knnjoin.Cost(outer, inner, k))
		if est != want {
			t.Errorf("k=%d: full-sample estimate %g, exact %g", k, est, want)
		}
	}
}

func TestBlockSampleAccuracyWithPartialSample(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(clusteredPoints(rng, 5000, bounds), bounds, 64).CountTree()
	inner := buildIx(clusteredPoints(rng, 5000, bounds), bounds, 64).CountTree()
	k := 50
	actual := float64(knnjoin.Cost(outer, inner, k))
	bs := NewBlockSample(outer, inner, outer.NumBlocks()/2)
	est, err := bs.EstimateJoin(k)
	if err != nil {
		t.Fatal(err)
	}
	if r := errRatio(est, actual); r > 0.3 {
		t.Errorf("half-sample error ratio %.3f exceeds 0.3", r)
	}
}

func TestCatalogMergeExactWithFullSample(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(randPoints(rng, 1500, bounds), bounds, 64).CountTree()
	inner := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64).CountTree()
	maxK := 300
	cm, err := BuildCatalogMerge(outer, inner, 0, maxK)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= maxK; k += 13 {
		est, err := cm.EstimateJoin(k)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(knnjoin.Cost(outer, inner, k))
		if est != want {
			t.Fatalf("k=%d: full-sample catalog-merge %g, exact %g", k, est, want)
		}
	}
}

func TestCatalogMergeSampledAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(clusteredPoints(rng, 6000, bounds), bounds, 64).CountTree()
	inner := buildIx(clusteredPoints(rng, 6000, bounds), bounds, 64).CountTree()
	cm, err := BuildCatalogMerge(outer, inner, outer.NumBlocks()/2, 200)
	if err != nil {
		t.Fatal(err)
	}
	k := 80
	est, err := cm.EstimateJoin(k)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(knnjoin.Cost(outer, inner, k))
	if r := errRatio(est, actual); r > 0.3 {
		t.Errorf("sampled catalog-merge error %.3f exceeds 0.3", r)
	}
	// Clamping beyond MaxK must not error.
	if _, err := cm.EstimateJoin(10 * cm.MaxK()); err != nil {
		t.Errorf("clamped estimate failed: %v", err)
	}
	if cm.StorageBytes() <= 0 {
		t.Error("merged catalog must report positive storage")
	}
}

func TestVirtualGridAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(clusteredPoints(rng, 5000, bounds), bounds, 64).CountTree()
	inner := buildIx(clusteredPoints(rng, 5000, bounds), bounds, 64).CountTree()
	vg, err := BuildVirtualGrid(inner, 10, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	k := 60
	est, err := vg.EstimateJoin(outer, k)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(knnjoin.Cost(outer, inner, k))
	r := errRatio(est, actual)
	t.Logf("virtual grid estimate %g, actual %g, error %.3f", est, actual, r)
	// The paper reports < 20%; allow headroom for the scaled-down data.
	if r > 0.45 {
		t.Errorf("virtual-grid error ratio %.3f exceeds 0.45", r)
	}
	if vg.StorageBytes() <= 0 {
		t.Error("virtual grid must report positive storage")
	}
}

// Every outer block must be attributed to exactly one grid cell, whatever
// the grid size — the O(n_o) invariant of §4.3.2.
func TestVirtualGridAttributionPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 32).CountTree()
	inner := buildIx(randPoints(rng, 1000, bounds), bounds, 32).CountTree()
	for _, g := range []int{1, 4, 7, 16} {
		vg, err := BuildVirtualGrid(inner, g, g, 50)
		if err != nil {
			t.Fatal(err)
		}
		attributed := 0
		counts := map[int]int{}
		for i, cell := range vg.cells {
			outer.VisitRange(cell, func(o *index.Block) {
				if vg.attributedTo(o, i) {
					counts[o.ID]++
					attributed++
				}
			})
		}
		if attributed != outer.NumBlocks() {
			t.Errorf("grid %dx%d attributed %d of %d blocks", g, g, attributed, outer.NumBlocks())
		}
		for id, c := range counts {
			if c != 1 {
				t.Errorf("grid %dx%d: block %d attributed %d times", g, g, id, c)
			}
		}
	}
}

func TestVirtualGridBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	bounds := geom.NewRect(0, 0, 10, 10)
	inner := buildIx(randPoints(rng, 100, bounds), bounds, 16).CountTree()
	if _, err := BuildVirtualGrid(inner, 0, 5, 10); err == nil {
		t.Error("zero grid dimension should be rejected")
	}
	vg, err := BuildVirtualGrid(inner, 4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vg.EstimateJoin(inner, 0); err == nil {
		t.Error("k=0 should be rejected")
	}
	// Bind adapter must agree with direct estimation.
	bound := vg.Bind(inner)
	a, err := bound.EstimateJoin(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vg.EstimateJoin(inner, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Bind estimate %g != direct %g", a, b)
	}
}
