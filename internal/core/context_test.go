package core

import (
	"context"
	"errors"
	"testing"

	"knncost/internal/geom"
)

func TestBatchContextMatchesPlainBatch(t *testing.T) {
	s, queries := batchFixture(t)
	want := EstimateSelectBatch(s, queries, 1)
	for _, parallelism := range []int{0, 1, 4} {
		got, err := EstimateSelectBatchContext(context.Background(), s, queries, parallelism)
		if err != nil {
			t.Fatalf("p=%d: %v", parallelism, err)
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d results, want %d", parallelism, len(got), len(want))
		}
		for i := range want {
			if got[i].Blocks != want[i].Blocks || (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("p=%d query %d: %+v != %+v", parallelism, i, got[i], want[i])
			}
		}
	}
}

func TestBatchContextCancelled(t *testing.T) {
	s, queries := batchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallelism := range []int{1, 4} {
		_, err := EstimateSelectBatchContext(ctx, s, queries, parallelism)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("p=%d: err = %v, want context.Canceled", parallelism, err)
		}
	}
}

// Cancelling mid-batch stops the fan-out promptly: a batch of slow
// estimator calls must not run every remaining query after the cancel.
func TestBatchContextStopsEarly(t *testing.T) {
	s, queries := batchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	counting := estimatorFunc(func(p geom.Point, k int) (float64, error) {
		ran++
		if ran == 3 {
			cancel()
		}
		return s.EstimateSelect(p, k)
	})
	_, err := EstimateSelectBatchContext(ctx, counting, queries, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= len(queries) {
		t.Fatalf("cancel did not stop the batch: ran all %d queries", ran)
	}
}

// estimatorFunc adapts a function to SelectEstimator for tests.
type estimatorFunc func(geom.Point, int) (float64, error)

func (f estimatorFunc) EstimateSelect(p geom.Point, k int) (float64, error) { return f(p, k) }
