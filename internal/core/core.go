// Package core implements the paper's contribution: cost estimation for the
// spatial k-NN operators.
//
// For k-NN-Select (σ_{k,q}) it provides:
//
//   - Staircase (§3): per-block interval catalogs built with Procedure 1 for
//     the block center and corners, answering any query with O(1)-ish
//     lookups plus the linear interpolation of Equations 1–2. Two variants:
//     ModeCenterOnly and ModeCenterCorners.
//   - DensityBased (§2, paper ref [24]): the state-of-the-art baseline that
//     grows a circle around the query point using block densities from the
//     Count-Index until it is estimated to contain k points.
//
// For k-NN-Join (R ⋉_knn S) it provides:
//
//   - BlockSample (§4.1): computes localities for a spatially distributed
//     sample of outer blocks at query time and scales up.
//   - CatalogMerge (§4.2): precomputes locality catalogs with Procedure 2
//     for sampled outer blocks and merges them with a plane sweep into one
//     catalog per (outer, inner) pair; estimation is a single lookup.
//   - VirtualGrid (§4.3): precomputes one locality catalog per cell of a
//     virtual grid laid over the inner index — linear instead of quadratic
//     storage across a schema — and scales cell costs by the
//     diagonal ratio of the overlapping outer blocks.
//
// Every estimate is the predicted number of blocks scanned by the
// corresponding evaluation algorithm in internal/knn (distance browsing) or
// internal/knnjoin (locality-based join).
package core

import "knncost/internal/geom"

// SelectEstimator predicts the number of blocks a k-NN-Select at q with the
// given k scans under distance browsing.
type SelectEstimator interface {
	// EstimateSelect returns the predicted block-scan cost.
	EstimateSelect(q geom.Point, k int) (float64, error)
}

// JoinEstimator predicts the total number of inner blocks a k-NN-Join scans
// under locality-based processing. The outer and inner relations are fixed
// at construction time for catalog-backed estimators; see the concrete
// types.
type JoinEstimator interface {
	// EstimateJoin returns the predicted total block-scan cost.
	EstimateJoin(k int) (float64, error)
}
