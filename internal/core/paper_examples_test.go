package core

import (
	"math/rand"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/quadtree"
)

// TestFigure1DistanceBrowsing pins the implementation to the worked
// example of the paper's Figure 1: with k = 2, distance browsing scans
// only Blocks A and C (cost 2), avoiding Block B, while the depth-first
// algorithm of ref [19] cannot do better.
//
// Geometry (all blocks tile [0,8]×[0,8]):
//
//	A = [0,4]×[0,4]  holds y=(2,2), z=(3,3);  q=(3.5,1) lies in A
//	C = [4,8]×[0,4]  holds x=(4.2,1)          MINDIST(q,C) = 0.5
//	B = [0,4]×[4,8]  holds w=(2,7)            MINDIST(q,B) = 3.0
//	D = [4,8]×[4,8]  empty
//
// Browsing scans A (y at 1.80, z at 2.06 queued); the blocks-queue head C
// at 0.5 beats the tuples head, so C is scanned and x (0.7) is returned
// first, then y. B (MINDIST 3.0 > 1.80) is never touched: cost = 2.
func TestFigure1DistanceBrowsing(t *testing.T) {
	leaf := func(r geom.Rect, pts ...geom.Point) *index.Node {
		return &index.Node{Bounds: r, Block: &index.Block{
			Bounds: r, Points: pts, Count: len(pts),
		}}
	}
	root := &index.Node{
		Bounds: geom.NewRect(0, 0, 8, 8),
		Children: []*index.Node{
			leaf(geom.NewRect(0, 0, 4, 4), geom.Point{X: 2, Y: 2}, geom.Point{X: 3, Y: 3}), // A
			leaf(geom.NewRect(4, 0, 8, 4), geom.Point{X: 4.2, Y: 1}),                       // C
			leaf(geom.NewRect(0, 4, 4, 8), geom.Point{X: 2, Y: 7}),                         // B
			leaf(geom.NewRect(4, 4, 8, 8)),                                                 // D
		},
	}
	tree := index.New(root, true)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 3.5, Y: 1}

	res, stats := knn.Select(tree, q, 2)
	if len(res) != 2 {
		t.Fatalf("got %d neighbors", len(res))
	}
	if res[0].Point != (geom.Point{X: 4.2, Y: 1}) {
		t.Errorf("nearest = %v, want x=(4.2,1) from Block C", res[0].Point)
	}
	if res[1].Point != (geom.Point{X: 2, Y: 2}) {
		t.Errorf("second = %v, want y=(2,2) from Block A", res[1].Point)
	}
	if stats.BlocksScanned != 2 {
		t.Errorf("distance browsing scanned %d blocks, the paper's example scans 2 (A and C)",
			stats.BlocksScanned)
	}

	// The depth-first algorithm is suboptimal: never fewer blocks than
	// browsing, same results.
	dfRes, dfStats := knn.SelectDF(tree, q, 2)
	if dfStats.BlocksScanned < stats.BlocksScanned {
		t.Errorf("DF scanned %d < browsing %d", dfStats.BlocksScanned, stats.BlocksScanned)
	}
	for i := range dfRes {
		if dfRes[i].Point != res[i].Point {
			t.Errorf("DF result %d = %v, browsing %v", i, dfRes[i].Point, res[i].Point)
		}
	}

	// The Procedure 1 catalog for q must state cost 2 for k = 2.
	cat := BuildSelectCatalog(tree, q, 4)
	if got, ok := cat.Lookup(2); !ok || got != 2 {
		t.Errorf("catalog cost at k=2 is %d (%v), want 2", got, ok)
	}
}

// TestFigure6Locality pins the locality computation and Procedure 2 to the
// worked example of Figure 6: with k = 10, scanning from Block Q reaches
// Z (700 points) first; the marked MAXDIST then pulls in X, Y and T but
// not L, so the locality size is 4, and the first catalog entry is
// ([1,700], 4) followed by ([701,1200], 5) once X's 500 points and L are
// absorbed.
//
// Geometry (1-D arrangement, all blocks have y-extent [0,1]):
//
//	Q = [0,1]     the outer block
//	Z = [1.1,2.1] 700 points  MINDIST 0.1  MAXDIST(Q,Z) = √(2.1²+1) ≈ 2.33
//	X = [1.5,2.5] 500 points  MINDIST 0.5  MAXDIST(Q,X) = √(2.5²+1) ≈ 2.69
//	Y = [1.8,2.8] 300 points  MINDIST 0.8
//	T = [2.0,3.0] 200 points  MINDIST 1.0
//	L = [3.4,4.4] 100 points  MINDIST 2.4 (> 2.33, ≤ 2.69)
func TestFigure6Locality(t *testing.T) {
	leaf := func(x0, x1 float64, count int) *index.Node {
		r := geom.NewRect(x0, 0, x1, 1)
		return &index.Node{Bounds: r, Block: &index.Block{Bounds: r, Count: count}}
	}
	root := &index.Node{
		Bounds: geom.NewRect(0, 0, 5, 1),
		Children: []*index.Node{
			leaf(1.1, 2.1, 700), // Z
			leaf(1.5, 2.5, 500), // X
			leaf(1.8, 2.8, 300), // Y
			leaf(2.0, 3.0, 200), // T
			leaf(3.4, 4.4, 100), // L
		},
	}
	inner := index.New(root, false)
	qBlock := geom.NewRect(0, 0, 1, 1)

	loc := knnjoin.Locality(inner, qBlock, 10)
	if len(loc) != 4 {
		t.Fatalf("locality size = %d, the paper's example has 4 (Z, X, Y, T)", len(loc))
	}
	for _, b := range loc {
		if b.Bounds.Min.X == 3.4 {
			t.Error("Block L must not be in the k=10 locality")
		}
	}

	cat := BuildLocalityCatalog(inner, qBlock, 1200)
	entries := cat.Entries()
	if len(entries) < 2 {
		t.Fatalf("catalog has %d entries, want at least 2", len(entries))
	}
	if e := entries[0]; e.StartK != 1 || e.EndK != 700 || e.Cost != 4 {
		t.Errorf("first entry = %+v, the paper derives ([1,700], 4)", e)
	}
	if e := entries[1]; e.StartK != 701 || e.EndK != 1200 || e.Cost != 5 {
		t.Errorf("second entry = %+v, the paper derives ([701,1200], 5)", e)
	}
}

// TestFigure5Flow pins the query flow of Figure 5: a query with k within
// the maintained range is answered from the catalogs; a query with larger
// k routes to the Count-Index (density-based fallback).
func TestFigure5Flow(t *testing.T) {
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := randPoints(rand.New(rand.NewSource(61)), 3000, bounds)
	data := quadtree.Build(pts, quadtree.Options{Capacity: 64, Bounds: bounds}).Index()
	probe := &probeEstimator{}
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 100, Fallback: probe})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 50, Y: 50}
	if _, err := s.EstimateSelect(q, 100); err != nil {
		t.Fatal(err)
	}
	if probe.calls != 0 {
		t.Errorf("k <= MaxK must not hit the fallback (calls=%d)", probe.calls)
	}
	if _, err := s.EstimateSelect(q, 101); err != nil {
		t.Fatal(err)
	}
	if probe.calls != 1 {
		t.Errorf("k > MaxK must route to the fallback exactly once (calls=%d)", probe.calls)
	}
}

type probeEstimator struct{ calls int }

func (p *probeEstimator) EstimateSelect(geom.Point, int) (float64, error) {
	p.calls++
	return 42, nil
}
