package core

import (
	"math/rand"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/knn"
)

func TestQuadrantCornerMapping(t *testing.T) {
	b := geom.NewRect(0, 0, 10, 10)
	corners := b.Corners()
	cases := []struct {
		q    geom.Point
		want int
	}{
		{geom.Point{X: 1, Y: 1}, 0}, // SW -> lower-left
		{geom.Point{X: 9, Y: 1}, 1}, // SE -> lower-right
		{geom.Point{X: 9, Y: 9}, 2}, // NE -> upper-right
		{geom.Point{X: 1, Y: 9}, 3}, // NW -> upper-left
		{geom.Point{X: 5, Y: 5}, 2}, // center ties go east+north
	}
	for _, c := range cases {
		got := quadrantCorner(b, c.q)
		if got != c.want {
			t.Errorf("quadrantCorner(%v) = %d (%v), want %d (%v)",
				c.q, got, corners[got], c.want, corners[c.want])
		}
	}
}

func TestStaircaseQuadrantMode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := clusteredPoints(rng, 4000, bounds)
	data := buildIx(pts, bounds, 64)
	cq, err := BuildStaircase(data, StaircaseOptions{MaxK: 200, Mode: ModeCenterQuadrant})
	if err != nil {
		t.Fatal(err)
	}
	if cq.Mode() != ModeCenterQuadrant {
		t.Fatalf("Mode = %v", cq.Mode())
	}
	if cq.Mode().String() != "Center+Quadrant" {
		t.Errorf("String = %q", cq.Mode().String())
	}
	// At a block center the estimate equals the exact center cost (L=0).
	blk := data.Blocks()[0]
	for _, b := range data.Blocks() {
		if b.Count > blk.Count {
			blk = b
		}
	}
	c := blk.Bounds.Center()
	est, err := cq.EstimateSelect(c, 50)
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(knn.SelectCost(data, c, 50)); est != want {
		t.Errorf("estimate at center %g, want %g", est, want)
	}
	// Storage: center + 4 corner catalogs per block must exceed the
	// merged-corners variant.
	cc, err := BuildStaircase(data, StaircaseOptions{MaxK: 200, Mode: ModeCenterCorners})
	if err != nil {
		t.Fatal(err)
	}
	if cq.StorageBytes() <= cc.StorageBytes() {
		t.Errorf("quadrant storage %d should exceed merged-corners %d",
			cq.StorageBytes(), cc.StorageBytes())
	}
}

// The quadrant variant's corner cost is never above the merged-max corner
// cost, so its estimate is bounded by the CenterCorners estimate whenever
// Δ >= 0 for both.
func TestQuadrantEstimateBelowMaxMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := clusteredPoints(rng, 4000, bounds)
	data := buildIx(pts, bounds, 64)
	cq, err := BuildStaircase(data, StaircaseOptions{MaxK: 150, Mode: ModeCenterQuadrant})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := BuildStaircase(data, StaircaseOptions{MaxK: 150, Mode: ModeCenterCorners})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		k := 1 + rng.Intn(150)
		a, err := cq.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := cc.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		blk := data.Find(q)
		if blk == nil {
			continue
		}
		cCenter, _ := cq.center[blk.ID].Lookup(k)
		cQuad, _ := cq.quads[blk.ID][quadrantCorner(blk.Bounds, q)].Lookup(k)
		cMax, _ := cc.corners[blk.ID].Lookup(k)
		if cQuad >= cCenter && cMax >= cCenter && a > b+1e-9 {
			t.Fatalf("quadrant estimate %g above max-merge %g (center %d, quad %d, max %d)",
				a, b, cCenter, cQuad, cMax)
		}
	}
}
