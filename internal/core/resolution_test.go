package core

import (
	"math/rand"
	"testing"

	"knncost/internal/geom"
)

func TestResolutionCanon(t *testing.T) {
	cases := []struct {
		name string
		in   Resolution
		want Resolution
	}{
		{"zero value gets every default",
			Resolution{},
			Resolution{MaxK: DefaultMaxK, Corners: 1, GridSize: DefaultGridSize}},
		{"explicit axes survive",
			Resolution{MaxK: 128, Corners: 4, GridSize: 7, AknnCapacity: 256},
			Resolution{MaxK: 128, Corners: 4, GridSize: 7, AknnCapacity: 256}},
		{"negative corners mean center-only",
			Resolution{MaxK: 64, Corners: -7, GridSize: 3},
			Resolution{MaxK: 64, Corners: -1, GridSize: 3}},
		{"negative aknn capacity clamps to finest",
			Resolution{MaxK: 64, GridSize: 3, AknnCapacity: -5},
			Resolution{MaxK: 64, Corners: 1, GridSize: 3}},
	}
	for _, c := range cases {
		if got := c.in.Canon(); got != c.want {
			t.Errorf("%s: Canon(%+v) = %+v, want %+v", c.name, c.in, got, c.want)
		}
	}
	// Canon must be idempotent: canonical resolutions are map keys.
	for _, c := range cases {
		once := c.in.Canon()
		if twice := once.Canon(); twice != once {
			t.Errorf("%s: Canon not idempotent: %+v then %+v", c.name, once, twice)
		}
	}
}

func TestResolutionValidate(t *testing.T) {
	valid := []Resolution{
		{},
		{MaxK: 1, Corners: -1, GridSize: 1},
		{MaxK: 5000, Corners: 4, GridSize: 100, AknnCapacity: 1 << 20},
	}
	for _, r := range valid {
		if err := r.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", r, err)
		}
	}
	invalid := []Resolution{
		{MaxK: -3},
		{Corners: 2},
		{Corners: 3},
		{GridSize: -1},
	}
	for _, r := range invalid {
		if err := r.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an unbuildable resolution", r)
		}
	}
}

func TestResolutionStaircaseMode(t *testing.T) {
	cases := []struct {
		corners int
		want    StaircaseMode
	}{{-1, ModeCenterOnly}, {0, ModeCenterCorners}, {1, ModeCenterCorners}, {4, ModeCenterQuadrant}}
	for _, c := range cases {
		r := Resolution{Corners: c.corners}
		if got := r.StaircaseMode(); got != c.want {
			t.Errorf("Corners %d: StaircaseMode() = %v, want %v", c.corners, got, c.want)
		}
		// cornersOfMode inverts the mapping for every reachable mode.
		if got := cornersOfMode(c.want); (Resolution{Corners: got}).StaircaseMode() != c.want {
			t.Errorf("cornersOfMode(%v) = %d does not map back", c.want, got)
		}
	}
}

func TestResolutionKey(t *testing.T) {
	if got, want := (Resolution{}).Key(), "k1000.c1.g10.a0"; got != want {
		t.Fatalf("zero-value Key() = %q, want %q", got, want)
	}
	if got, want := (Resolution{MaxK: 64, Corners: -1, GridSize: 2, AknnCapacity: 128}).Key(), "k64.c-1.g2.a128"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	// Keys must distinguish canonically distinct resolutions — the disk
	// cache fingerprints on them.
	seen := map[string]Resolution{}
	for _, r := range []Resolution{
		{}, {MaxK: 500}, {Corners: 4}, {Corners: -1}, {GridSize: 5}, {AknnCapacity: 64},
	} {
		k := r.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key %q collides: %+v and %+v", k, prev, r)
		}
		seen[k] = r
	}
}

// TestResolutionCoarserLadder walks the full tuner ladder from a
// representative production resolution and asserts the documented order
// (MaxK halves to 64, then GridSize halves to 2, then AknnCapacity doubles
// from 64 to 4096), termination, and the exhaustion fixed point.
func TestResolutionCoarserLadder(t *testing.T) {
	r := Resolution{MaxK: 1000, GridSize: 10}.Canon()
	var ladder []Resolution
	for i := 0; i < 100; i++ {
		next := r.Coarser()
		if next == r {
			break
		}
		ladder = append(ladder, next)
		r = next
	}
	want := []Resolution{
		{MaxK: 500, Corners: 1, GridSize: 10},
		{MaxK: 250, Corners: 1, GridSize: 10},
		{MaxK: 125, Corners: 1, GridSize: 10},
		{MaxK: 64, Corners: 1, GridSize: 10},
		{MaxK: 64, Corners: 1, GridSize: 5},
		{MaxK: 64, Corners: 1, GridSize: 2},
		{MaxK: 64, Corners: 1, GridSize: 2, AknnCapacity: 64},
		{MaxK: 64, Corners: 1, GridSize: 2, AknnCapacity: 128},
		{MaxK: 64, Corners: 1, GridSize: 2, AknnCapacity: 256},
		{MaxK: 64, Corners: 1, GridSize: 2, AknnCapacity: 512},
		{MaxK: 64, Corners: 1, GridSize: 2, AknnCapacity: 1024},
		{MaxK: 64, Corners: 1, GridSize: 2, AknnCapacity: 2048},
		{MaxK: 64, Corners: 1, GridSize: 2, AknnCapacity: 4096},
	}
	if len(ladder) != len(want) {
		t.Fatalf("ladder has %d rungs, want %d: %+v", len(ladder), len(want), ladder)
	}
	for i := range want {
		if ladder[i] != want[i] {
			t.Fatalf("rung %d = %+v, want %+v", i, ladder[i], want[i])
		}
	}
	// The floor is a fixed point, and Corners is never tuned.
	floor := ladder[len(ladder)-1]
	if floor.Coarser() != floor {
		t.Fatalf("floor %+v is not a fixed point", floor)
	}
	quad := Resolution{MaxK: 64, Corners: 4, GridSize: 2, AknnCapacity: 4096}
	if got := quad.Coarser(); got.Corners != 4 {
		t.Fatalf("Coarser tuned Corners: %+v", got)
	}
}

func TestResolutionCoarserN(t *testing.T) {
	r := Resolution{MaxK: 256, GridSize: 4}.Canon()
	step := r
	for n := 0; n < 20; n++ {
		if got := r.CoarserN(n); got != step {
			t.Fatalf("CoarserN(%d) = %+v, want %+v", n, got, step)
		}
		step = step.Coarser()
	}
	// Overshooting the ladder stops at the floor instead of looping.
	if got, floor := r.CoarserN(1000), r.CoarserN(20); got != floor {
		t.Fatalf("CoarserN(1000) = %+v, want the floor %+v", got, floor)
	}
}

// TestArtifactSizeBytes: every core artifact must report its resolution
// and a positive byte footprint — the quantities the store's space-budget
// tuner accounts against -catalog-budget-bytes.
func TestArtifactSizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 1000, bounds), bounds, 32)

	stair, err := BuildStaircase(data, StaircaseOptions{MaxK: 80, Mode: ModeCenterQuadrant})
	if err != nil {
		t.Fatal(err)
	}
	vg, err := BuildVirtualGrid(data.CountTree(), 4, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := BuildCatalogMerge(data.CountTree(), data.CountTree(), 10, 80)
	if err != nil {
		t.Fatal(err)
	}
	dens := NewDensityBased(data.CountTree())

	arts := []struct {
		name string
		a    Artifact
		want Resolution
	}{
		{"staircase", stair, Resolution{MaxK: 80, Corners: 4}.Canon()},
		{"virtual-grid", vg, Resolution{MaxK: 80, GridSize: 4}.Canon()},
		{"catalog-merge", cm, Resolution{MaxK: 80}.Canon()},
		{"density", dens, DefaultResolution()},
	}
	for _, a := range arts {
		if got := a.a.Resolution(); got != a.want {
			t.Errorf("%s: Resolution() = %+v, want %+v", a.name, got, a.want)
		}
		if got := a.a.SizeBytes(); got <= 0 {
			t.Errorf("%s: SizeBytes() = %d, want > 0", a.name, got)
		}
	}
}
