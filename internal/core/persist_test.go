package core

import (
	"bytes"
	"math/rand"
	"testing"

	"knncost/internal/geom"
	"knncost/internal/rtree"
)

func TestStaircaseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64)
	for _, mode := range []StaircaseMode{ModeCenterCorners, ModeCenterOnly, ModeCenterQuadrant} {
		orig, err := BuildStaircase(data, StaircaseOptions{MaxK: 150, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		n, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatalf("%v WriteTo: %v", mode, err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("%v: WriteTo reported %d bytes, wrote %d", mode, n, buf.Len())
		}
		loaded, err := LoadStaircase(data, &buf, StaircaseOptions{})
		if err != nil {
			t.Fatalf("%v LoadStaircase: %v", mode, err)
		}
		if loaded.Mode() != mode || loaded.MaxK() != 150 {
			t.Fatalf("%v: loaded mode/maxK = %v/%d", mode, loaded.Mode(), loaded.MaxK())
		}
		for i := 0; i < 300; i++ {
			q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			k := 1 + rng.Intn(150)
			a, err := orig.EstimateSelect(q, k)
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.EstimateSelect(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%v: estimates diverge at q=%v k=%d: %g vs %g", mode, q, k, a, b)
			}
		}
	}
}

func TestStaircaseLoadRejectsWrongIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	bounds := geom.NewRect(0, 0, 50, 50)
	data := buildIx(randPoints(rng, 1000, bounds), bounds, 32)
	other := buildIx(randPoints(rng, 1500, bounds), bounds, 32)
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStaircase(other, &buf, StaircaseOptions{}); err == nil {
		t.Error("loading against a different index must fail the fingerprint check")
	}
}

func TestStaircaseRoundTripOnRTree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	bounds := geom.NewRect(0, 0, 100, 100)
	pts := clusteredPoints(rng, 2000, bounds)
	rt, err := rtree.Build(pts, rtree.Options{LeafCapacity: 64, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	data := rt.Index()
	orig, err := BuildStaircase(data, StaircaseOptions{MaxK: 80, AuxCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// The auxiliary quadtree is deterministic, so loading with the same
	// AuxCapacity reproduces the estimator.
	loaded, err := LoadStaircase(data, &buf, StaircaseOptions{AuxCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	q := pts[17]
	a, err := orig.EstimateSelect(q, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.EstimateSelect(q, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("estimates diverge: %g vs %g", a, b)
	}
}

func TestCatalogMergeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(clusteredPoints(rng, 2000, bounds), bounds, 64).CountTree()
	inner := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64).CountTree()
	orig, err := BuildCatalogMerge(outer, inner, 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalogMerge(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 200; k += 11 {
		a, err := orig.EstimateJoin(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.EstimateJoin(k)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("k=%d: %g vs %g", k, a, b)
		}
	}
	if loaded.MaxK() != 200 {
		t.Errorf("MaxK = %d", loaded.MaxK())
	}
}

func TestVirtualGridRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	bounds := geom.NewRect(0, 0, 100, 100)
	outer := buildIx(clusteredPoints(rng, 2000, bounds), bounds, 64).CountTree()
	inner := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64).CountTree()
	orig, err := BuildVirtualGrid(inner, 7, 5, 150)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadVirtualGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nx, ny := loaded.GridSize(); nx != 7 || ny != 5 {
		t.Fatalf("grid size %dx%d", nx, ny)
	}
	for k := 1; k <= 150; k += 13 {
		a, err := orig.EstimateJoin(outer, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.EstimateJoin(outer, k)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("k=%d: %g vs %g", k, a, b)
		}
	}
}

func TestLoadCorruptData(t *testing.T) {
	if _, err := LoadCatalogMerge(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := LoadCatalogMerge(bytes.NewReader([]byte("XXXX\x01"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := LoadVirtualGrid(bytes.NewReader([]byte("KNVG\x02"))); err == nil {
		t.Error("bad version should fail")
	}
	// Truncated staircase payload.
	rng := rand.New(rand.NewSource(36))
	bounds := geom.NewRect(0, 0, 10, 10)
	data := buildIx(randPoints(rng, 200, bounds), bounds, 16)
	s, err := BuildStaircase(data, StaircaseOptions{MaxK: 30})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadStaircase(data, bytes.NewReader(trunc), StaircaseOptions{}); err == nil {
		t.Error("truncated staircase file should fail")
	}
}
