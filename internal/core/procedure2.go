package core

import (
	"sync"

	"knncost/internal/catalog"
	"knncost/internal/geom"
	"knncost/internal/index"
)

// localityScans bundles the two interleaved MINDIST scans of Procedure 2 so
// both heaps can be pooled and re-seeded together. The same pooling
// invariant as browserPool applies: a pooled pair must not escape the
// goroutine that took it.
type localityScans struct {
	count, max index.Scan
}

var localityScanPool = sync.Pool{New: func() any { return new(localityScans) }}

// BuildLocalityCatalog runs Procedure 2 of the paper: two interleaved
// MINDIST scans of the inner Count-Index build, in O(L) block visits, a
// catalog mapping every k in [1, maxK] to the locality size of the origin
// (an outer block or a virtual-grid cell).
//
// Count-Scan consumes inner blocks in MINDIST order, accumulating their
// point counts — the cumulative count after block i is the largest k whose
// locality needs only blocks 1..i. Max-Scan trails behind, counting how many
// blocks have MINDIST not exceeding the highest MAXDIST seen by Count-Scan
// — exactly the locality size. A Count-Scan block whose MAXDIST does not
// raise the running maximum cannot change the locality size, so its k range
// coalesces with the previous entry (the redundant-entry elimination of
// §4.2).
//
// The resulting catalog satisfies, for every k in [1, maxK]:
//
//	catalog.Lookup(k) == len(knnjoin.Locality(inner, from, k))
//
// which the tests verify directly.
func BuildLocalityCatalog(inner *index.Tree, from geom.Origin, maxK int) *catalog.Catalog {
	cat := &catalog.Catalog{}
	if maxK < 1 {
		return cat
	}
	scans := localityScanPool.Get().(*localityScans)
	defer localityScanPool.Put(scans)
	scans.count.Reset(inner, from)
	scans.max.Reset(inner, from)
	countScan, maxScan := &scans.count, &scans.max
	cumulative := 0 // points accumulated by Count-Scan
	aggCost := 0    // blocks consumed by Max-Scan == current locality size
	highestMaxDist := 0.0
	maxScanDone := false
	for cumulative < maxK {
		blk, _, ok := countScan.Next()
		if !ok {
			// Inner index exhausted: for larger k the locality is
			// every block.
			if cumulative < maxK {
				mustAppend(cat, cumulative+1, maxK, inner.NumBlocks())
			}
			return cat
		}
		startK := cumulative + 1
		cumulative += blk.Count
		if d := from.MaxDistTo(blk.Bounds); d > highestMaxDist {
			highestMaxDist = d
			// Advance Max-Scan through every block now within reach.
			for !maxScanDone {
				next, more := maxScan.PeekDist()
				if !more || next > highestMaxDist {
					maxScanDone = !more
					break
				}
				maxScan.Next()
				aggCost++
			}
		}
		if blk.Count == 0 {
			// A zero-count block adds no k values; its MAXDIST effect
			// (if any) lands on the next entry.
			continue
		}
		endK := cumulative
		if endK > maxK {
			endK = maxK
		}
		mustAppend(cat, startK, endK, aggCost)
	}
	return cat
}
