package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/quadtree"
)

func randPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
	}
	return pts
}

// clusteredPoints mimics the skew of GPS data: gaussian clusters plus
// uniform background, clipped to bounds.
func clusteredPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, 0, n)
	type cluster struct {
		c     geom.Point
		sigma float64
	}
	clusters := make([]cluster, 5)
	for i := range clusters {
		clusters[i] = cluster{
			c: geom.Point{
				X: bounds.Min.X + rng.Float64()*bounds.Width(),
				Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
			},
			sigma: bounds.Width() * (0.01 + rng.Float64()*0.05),
		}
	}
	for len(pts) < n {
		if rng.Float64() < 0.2 {
			pts = append(pts, geom.Point{
				X: bounds.Min.X + rng.Float64()*bounds.Width(),
				Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
			})
			continue
		}
		cl := clusters[rng.Intn(len(clusters))]
		p := geom.Point{
			X: cl.c.X + rng.NormFloat64()*cl.sigma,
			Y: cl.c.Y + rng.NormFloat64()*cl.sigma,
		}
		if bounds.Contains(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

func buildIx(pts []geom.Point, bounds geom.Rect, capacity int) *index.Tree {
	return quadtree.Build(pts, quadtree.Options{Capacity: capacity, Bounds: bounds}).Index()
}

// The defining invariant of Procedure 1: the catalog replays distance
// browsing, so Lookup(k) must equal the exact blocks-scanned cost for every
// k it covers.
func TestSelectCatalogMatchesDistanceBrowsing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.NewRect(0, 0, 100, 100)
	data := buildIx(clusteredPoints(rng, 3000, bounds), bounds, 64)
	maxK := 500
	for trial := 0; trial < 5; trial++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		cat := BuildSelectCatalog(data, q, maxK)
		if cat.MaxK() != maxK {
			t.Fatalf("catalog covers up to %d, want %d", cat.MaxK(), maxK)
		}
		for _, k := range []int{1, 2, 3, 10, 63, 64, 65, 100, 499, 500} {
			want := knn.SelectCost(data, q, k)
			got, ok := cat.Lookup(k)
			if !ok || got != want {
				t.Errorf("q=%v k=%d: catalog %d (%v), distance browsing %d", q, k, got, ok, want)
			}
		}
	}
}

func TestSelectCatalogSmallDataset(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	pts := randPoints(rand.New(rand.NewSource(2)), 20, bounds)
	data := buildIx(pts, bounds, 4)
	maxK := 100 // far beyond the 20 points
	cat := BuildSelectCatalog(data, geom.Point{X: 5, Y: 5}, maxK)
	if cat.MaxK() != maxK {
		t.Fatalf("catalog MaxK = %d, want %d", cat.MaxK(), maxK)
	}
	// Beyond the dataset size every block is scanned.
	got, ok := cat.Lookup(50)
	if !ok || got != data.NumBlocks() {
		t.Errorf("Lookup(50) = %d (%v), want all %d blocks", got, ok, data.NumBlocks())
	}
}

func TestSelectCatalogCostsNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bounds := geom.NewRect(0, 0, 50, 50)
	data := buildIx(randPoints(rng, 2000, bounds), bounds, 32)
	cat := BuildSelectCatalog(data, geom.Point{X: 25, Y: 25}, 800)
	last := 0
	for _, e := range cat.Entries() {
		if e.Cost < last {
			t.Fatalf("cost decreased: %d after %d", e.Cost, last)
		}
		last = e.Cost
	}
}

// The defining invariant of Procedure 2: for every k, Lookup(k) equals the
// locality size computed directly by the join algorithm.
func TestLocalityCatalogMatchesLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bounds := geom.NewRect(0, 0, 100, 100)
	inner := buildIx(clusteredPoints(rng, 4000, bounds), bounds, 64).CountTree()
	origins := []geom.Origin{
		geom.NewRect(10, 10, 20, 20),
		geom.NewRect(48, 48, 52, 52),
		geom.NewRect(90, 5, 99, 12),
		geom.Point{X: 33, Y: 66},
	}
	maxK := 600
	for _, from := range origins {
		cat := BuildLocalityCatalog(inner, from, maxK)
		if cat.MaxK() != maxK {
			t.Fatalf("catalog MaxK = %d, want %d", cat.MaxK(), maxK)
		}
		for k := 1; k <= maxK; k += 7 {
			want := knnjoin.LocalitySize(inner, from, k)
			got, ok := cat.Lookup(k)
			if !ok || got != want {
				t.Fatalf("from=%v k=%d: catalog %d (%v), locality %d", from, k, got, ok, want)
			}
		}
	}
}

// Property: the Procedure 2 catalog agrees with direct locality computation
// on random workloads, including skewed ones with empty blocks.
func TestLocalityCatalogProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		bounds := geom.NewRect(0, 0, 64, 64)
		n := 100 + local.Intn(1200)
		var pts []geom.Point
		if local.Intn(2) == 0 {
			pts = randPoints(local, n, bounds)
		} else {
			pts = clusteredPoints(local, n, bounds)
		}
		inner := buildIx(pts, bounds, 8+local.Intn(32)).CountTree()
		from := geom.NewRect(
			local.Float64()*60, local.Float64()*60,
			local.Float64()*64, local.Float64()*64)
		maxK := 1 + local.Intn(2*n) // sometimes beyond the dataset size
		cat := BuildLocalityCatalog(inner, from, maxK)
		for trial := 0; trial < 20; trial++ {
			k := 1 + local.Intn(maxK)
			want := knnjoin.LocalitySize(inner, from, k)
			got, ok := cat.Lookup(k)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: the Procedure 1 catalog agrees with distance browsing on random
// workloads.
func TestSelectCatalogProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		bounds := geom.NewRect(0, 0, 64, 64)
		n := 100 + local.Intn(900)
		data := buildIx(randPoints(local, n, bounds), bounds, 8+local.Intn(24))
		q := geom.Point{X: local.Float64() * 70, Y: local.Float64() * 70}
		maxK := 1 + local.Intn(n+50)
		cat := BuildSelectCatalog(data, q, maxK)
		for trial := 0; trial < 15; trial++ {
			k := 1 + local.Intn(maxK)
			want := knn.SelectCost(data, q, k)
			got, ok := cat.Lookup(k)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestBuildCatalogsDegenerateMaxK(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	data := buildIx(randPoints(rand.New(rand.NewSource(7)), 50, bounds), bounds, 8)
	if c := BuildSelectCatalog(data, geom.Point{X: 5, Y: 5}, 0); c.Len() != 0 {
		t.Error("maxK=0 select catalog should be empty")
	}
	if c := BuildLocalityCatalog(data, geom.NewRect(0, 0, 1, 1), 0); c.Len() != 0 {
		t.Error("maxK=0 locality catalog should be empty")
	}
}
