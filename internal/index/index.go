// Package index defines the index-structure abstraction shared by every
// algorithm in knncost. The paper (§2) deliberately avoids committing to one
// index: "our proposed techniques can be applied to a quadtree, an R-tree,
// or any of their variants". Accordingly, the quadtree, R-tree and grid
// packages all export their block hierarchy as an index.Tree, and every
// query-evaluation algorithm and cost estimator consumes only this package.
//
// A Tree is a hierarchy of Nodes whose leaves carry Blocks. A Block is the
// unit of I/O the paper counts: the cost of an operator is the number of
// blocks scanned. The auxiliary Count-Index of the paper — same block
// structure, counts but no data points — is derived from any Tree via
// CountTree.
package index

import (
	"fmt"

	"knncost/internal/geom"
	"knncost/internal/pqueue"
)

// Block is a leaf index page: a bounding rectangle plus either the points it
// stores (data index) or just their count (Count-Index). Blocks are the unit
// in which cost is measured throughout the paper.
type Block struct {
	// ID is the position of the block in Tree.Blocks(), assigned by New.
	ID int
	// Bounds is the region of space the block covers. For a
	// space-partitioning index it is the cell; for a data-partitioning
	// index it is the minimum bounding rectangle of the points.
	Bounds geom.Rect
	// Points holds the data points, nil in a Count-Index block.
	Points []geom.Point
	// Count is the number of points in the block. It equals len(Points)
	// whenever Points is non-nil.
	Count int
}

// Node is an internal or leaf node of the block hierarchy. Exactly one of
// Children (internal) or Block (leaf) is non-nil.
type Node struct {
	Bounds   geom.Rect
	Children []*Node
	Block    *Block
}

// IsLeaf reports whether n is a leaf node.
func (n *Node) IsLeaf() bool { return n.Block != nil }

// Tree is a read-only hierarchical view over the leaf blocks of a spatial
// index, supporting the traversals the paper's algorithms need: best-first
// MINDIST scans, point location, and range queries.
type Tree struct {
	root      *Node
	blocks    []*Block
	numPoints int
	// partitioning records whether the leaf blocks tile the root bounds
	// without overlap, i.e. whether every point of space falls in exactly
	// one block. True for quadtree and grid, false for R-tree. The
	// staircase technique requires a partitioning auxiliary index (§3.3).
	partitioning bool
}

// New assembles a Tree from a node hierarchy. It assigns consecutive IDs to
// the leaf blocks in depth-first order and aggregates point counts.
// partitioning declares whether the leaves tile space (see Tree).
func New(root *Node, partitioning bool) *Tree {
	t := &Tree{root: root, partitioning: partitioning}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			n.Block.ID = len(t.blocks)
			t.blocks = append(t.blocks, n.Block)
			t.numPoints += n.Block.Count
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if root != nil {
		walk(root)
	}
	return t
}

// Root returns the root node of the hierarchy.
func (t *Tree) Root() *Node { return t.root }

// Bounds returns the bounding rectangle of the whole index.
func (t *Tree) Bounds() geom.Rect {
	if t.root == nil {
		return geom.Rect{}
	}
	return t.root.Bounds
}

// Blocks returns all leaf blocks in depth-first order. The slice is shared;
// callers must not modify it.
func (t *Tree) Blocks() []*Block { return t.blocks }

// NumBlocks returns the number of leaf blocks.
func (t *Tree) NumBlocks() int { return len(t.blocks) }

// NumPoints returns the total number of points across all blocks.
func (t *Tree) NumPoints() int { return t.numPoints }

// Partitioning reports whether the leaf blocks tile space without overlap,
// which guarantees Find succeeds for any point inside Bounds.
func (t *Tree) Partitioning() bool { return t.partitioning }

// Find returns the first leaf block (in child order) whose bounds contain p,
// or nil when no block contains p. For a partitioning index, Find is the
// point-location primitive the staircase estimator uses to pick the catalog
// of the block enclosing the query point.
func (t *Tree) Find(p geom.Point) *Block {
	n := t.root
	if n == nil || !n.Bounds.Contains(p) {
		return nil
	}
	return findIn(n, p)
}

func findIn(n *Node, p geom.Point) *Block {
	if n.IsLeaf() {
		return n.Block
	}
	for _, c := range n.Children {
		if c.Bounds.Contains(p) {
			if b := findIn(c, p); b != nil {
				return b
			}
		}
	}
	return nil
}

// RangeBlocks returns all leaf blocks whose bounds intersect r, in
// depth-first order. The Virtual-Grid estimator uses it as the "range query
// on the outer relation" of §4.3.2.
func (t *Tree) RangeBlocks(r geom.Rect) []*Block {
	var out []*Block
	t.VisitRange(r, func(b *Block) {
		out = append(out, b)
	})
	return out
}

// VisitRange calls fn for each leaf block intersecting r, in depth-first
// order, without allocating a result slice.
func (t *Tree) VisitRange(r geom.Rect, fn func(*Block)) {
	if t.root == nil {
		return
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if !n.Bounds.Intersects(r) {
			return
		}
		if n.IsLeaf() {
			fn(n.Block)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
}

// CountTree returns the paper's Count-Index for this tree: a structurally
// identical hierarchy whose blocks carry counts but no data points. Block
// IDs match the source tree's, so costs measured on the Count-Index can be
// related back to data blocks.
func (t *Tree) CountTree() *Tree {
	ct := &Tree{numPoints: t.numPoints, partitioning: t.partitioning}
	ct.blocks = make([]*Block, 0, len(t.blocks))
	var clone func(n *Node) *Node
	clone = func(n *Node) *Node {
		m := &Node{Bounds: n.Bounds}
		if n.IsLeaf() {
			m.Block = &Block{ID: n.Block.ID, Bounds: n.Block.Bounds, Count: n.Block.Count}
			ct.blocks = append(ct.blocks, m.Block)
			return m
		}
		m.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			m.Children[i] = clone(c)
		}
		return m
	}
	if t.root != nil {
		ct.root = clone(t.root)
	}
	return ct
}

// Validate checks the structural invariants of the tree and returns the
// first violation found, or nil. It is intended for tests.
func (t *Tree) Validate() error {
	if t.root == nil {
		if len(t.blocks) != 0 {
			return fmt.Errorf("nil root with %d blocks", len(t.blocks))
		}
		return nil
	}
	seen := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if (n.Block != nil) == (len(n.Children) > 0) {
			return fmt.Errorf("node %v must be exactly one of leaf or internal", n.Bounds)
		}
		if n.IsLeaf() {
			b := n.Block
			if b.ID != seen {
				return fmt.Errorf("block %d out of DFS order (expected %d)", b.ID, seen)
			}
			seen++
			if b.Points != nil && len(b.Points) != b.Count {
				return fmt.Errorf("block %d: Count %d != len(Points) %d", b.ID, b.Count, len(b.Points))
			}
			for _, p := range b.Points {
				if !b.Bounds.Contains(p) {
					return fmt.Errorf("block %d: point %v outside bounds %v", b.ID, p, b.Bounds)
				}
			}
			return nil
		}
		for _, c := range n.Children {
			if !n.Bounds.ContainsRect(c.Bounds) {
				return fmt.Errorf("child bounds %v exceed parent %v", c.Bounds, n.Bounds)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if seen != len(t.blocks) {
		return fmt.Errorf("walked %d blocks, recorded %d", seen, len(t.blocks))
	}
	return nil
}

// Scan is an incremental best-first traversal of a Tree that yields leaf
// blocks in non-decreasing MINDIST order from an origin (a query point or an
// outer block). It is the "MINDIST scan" primitive of the paper, used by
// distance browsing, the density-based estimator, locality computation, and
// Procedures 1 and 2.
type Scan struct {
	from  geom.Origin
	queue pqueue.Queue[*Node]
}

// ScanMinDist starts a MINDIST scan of t from the given origin.
func (t *Tree) ScanMinDist(from geom.Origin) *Scan {
	s := &Scan{}
	s.Reset(t, from)
	return s
}

// Reset re-seeds s as a fresh MINDIST scan of t from the given origin,
// retaining the queue capacity of previous scans. It is the reuse primitive
// behind the zero-allocation catalog builders: one Scan (or knn.Browser)
// can serve many anchors without re-allocating its heap each time. The zero
// value of Scan is valid input.
func (s *Scan) Reset(t *Tree, from geom.Origin) {
	s.from = from
	s.queue.Reset()
	if t.root != nil {
		s.queue.Push(t.root, from.MinDistTo(t.root.Bounds))
	}
}

// Next returns the unvisited block with the smallest MINDIST from the
// origin, along with that MINDIST. The boolean is false when the scan is
// exhausted.
func (s *Scan) Next() (*Block, float64, bool) {
	for {
		prio, ok := s.queue.PeekPriority()
		if !ok {
			return nil, 0, false
		}
		n, _ := s.queue.Pop()
		if n.IsLeaf() {
			return n.Block, prio, true
		}
		for _, c := range n.Children {
			s.queue.Push(c, s.from.MinDistTo(c.Bounds))
		}
	}
}

// PeekDist returns a lower bound on the MINDIST of the next block without
// consuming it. Because internal-node MINDIST never exceeds its
// descendants', the head priority of the queue is exactly that bound; it is
// what distance browsing compares against the tuples-queue head. The boolean
// is false when the scan is exhausted.
func (s *Scan) PeekDist() (float64, bool) {
	return s.queue.PeekPriority()
}
