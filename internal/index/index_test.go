package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"knncost/internal/geom"
)

// buildTestTree makes a 2-level tree over [0,4]×[0,2] with four unit-ish
// blocks in a row:
//
//	[0,1] [1,2] | [2,3] [3,4]   (two internal nodes, two leaves each)
func buildTestTree() *Tree {
	leaf := func(x0, x1 float64, pts ...geom.Point) *Node {
		b := geom.NewRect(x0, 0, x1, 2)
		return &Node{Bounds: b, Block: &Block{Bounds: b, Points: pts, Count: len(pts)}}
	}
	left := &Node{
		Bounds: geom.NewRect(0, 0, 2, 2),
		Children: []*Node{
			leaf(0, 1, geom.Point{X: 0.5, Y: 1}),
			leaf(1, 2, geom.Point{X: 1.5, Y: 1}, geom.Point{X: 1.2, Y: 0.5}),
		},
	}
	right := &Node{
		Bounds: geom.NewRect(2, 0, 4, 2),
		Children: []*Node{
			leaf(2, 3),
			leaf(3, 4, geom.Point{X: 3.5, Y: 1.5}),
		},
	}
	root := &Node{Bounds: geom.NewRect(0, 0, 4, 2), Children: []*Node{left, right}}
	return New(root, true)
}

func TestNewAssignsDFSIDs(t *testing.T) {
	tr := buildTestTree()
	if got := tr.NumBlocks(); got != 4 {
		t.Fatalf("NumBlocks = %d, want 4", got)
	}
	if got := tr.NumPoints(); got != 4 {
		t.Fatalf("NumPoints = %d, want 4", got)
	}
	for i, b := range tr.Blocks() {
		if b.ID != i {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFind(t *testing.T) {
	tr := buildTestTree()
	cases := []struct {
		p      geom.Point
		wantID int
	}{
		{geom.Point{X: 0.5, Y: 0.5}, 0},
		{geom.Point{X: 1.5, Y: 1.5}, 1},
		{geom.Point{X: 2.5, Y: 1}, 2},
		{geom.Point{X: 3.9, Y: 0.1}, 3},
	}
	for _, c := range cases {
		b := tr.Find(c.p)
		if b == nil || b.ID != c.wantID {
			t.Errorf("Find(%v) = %v, want block %d", c.p, b, c.wantID)
		}
	}
	if b := tr.Find(geom.Point{X: 5, Y: 5}); b != nil {
		t.Errorf("Find outside bounds = %v, want nil", b)
	}
}

func TestRangeBlocks(t *testing.T) {
	tr := buildTestTree()
	got := tr.RangeBlocks(geom.NewRect(0.5, 0.5, 2.5, 1.5))
	ids := make([]int, len(got))
	for i, b := range got {
		ids[i] = b.ID
	}
	want := []int{0, 1, 2}
	if len(ids) != len(want) {
		t.Fatalf("RangeBlocks IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("RangeBlocks IDs = %v, want %v", ids, want)
		}
	}
	if got := tr.RangeBlocks(geom.NewRect(10, 10, 11, 11)); len(got) != 0 {
		t.Errorf("disjoint range returned %d blocks", len(got))
	}
}

func TestCountTree(t *testing.T) {
	tr := buildTestTree()
	ct := tr.CountTree()
	if err := ct.Validate(); err != nil {
		t.Fatalf("count tree Validate: %v", err)
	}
	if ct.NumBlocks() != tr.NumBlocks() || ct.NumPoints() != tr.NumPoints() {
		t.Fatalf("count tree shape mismatch")
	}
	for i, b := range ct.Blocks() {
		src := tr.Blocks()[i]
		if b.Points != nil {
			t.Errorf("count block %d carries points", i)
		}
		if b.Count != src.Count || b.Bounds != src.Bounds || b.ID != src.ID {
			t.Errorf("count block %d does not mirror source", i)
		}
	}
	// Mutating the count tree must not touch the source.
	ct.Blocks()[0].Count = 999
	if tr.Blocks()[0].Count == 999 {
		t.Error("count tree shares Block structs with source")
	}
}

func TestScanMinDistOrder(t *testing.T) {
	tr := buildTestTree()
	q := geom.Point{X: 3.5, Y: 1}
	scan := tr.ScanMinDist(q)
	var lastDist float64
	seen := map[int]bool{}
	for {
		b, d, ok := scan.Next()
		if !ok {
			break
		}
		if d < lastDist {
			t.Fatalf("MINDIST order violated: %g after %g", d, lastDist)
		}
		if got := geom.MinDist(q, b.Bounds); got != d {
			t.Errorf("reported dist %g != computed %g", d, got)
		}
		if seen[b.ID] {
			t.Fatalf("block %d yielded twice", b.ID)
		}
		seen[b.ID] = true
		lastDist = d
	}
	if len(seen) != tr.NumBlocks() {
		t.Fatalf("scan yielded %d blocks, want %d", len(seen), tr.NumBlocks())
	}
	// First block must be the one containing q.
	scan = tr.ScanMinDist(q)
	b, d, _ := scan.Next()
	if b.ID != 3 || d != 0 {
		t.Errorf("first block = %d at %g, want 3 at 0", b.ID, d)
	}
}

func TestScanPeekDistIsLowerBound(t *testing.T) {
	tr := buildTestTree()
	scan := tr.ScanMinDist(geom.Point{X: 0, Y: 0})
	for {
		peek, ok := scan.PeekDist()
		if !ok {
			break
		}
		_, d, ok := scan.Next()
		if !ok {
			break
		}
		if peek > d+1e-12 {
			t.Fatalf("PeekDist %g exceeds next block dist %g", peek, d)
		}
	}
}

func TestScanFromRectOrigin(t *testing.T) {
	tr := buildTestTree()
	from := geom.NewRect(1.2, 0.2, 1.8, 1.8) // inside block 1
	scan := tr.ScanMinDist(from)
	b, d, ok := scan.Next()
	if !ok || b.ID != 1 || d != 0 {
		t.Fatalf("first block from rect origin = %v at %g, want block 1 at 0", b, d)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil, true)
	if tr.NumBlocks() != 0 || tr.NumPoints() != 0 {
		t.Fatal("empty tree should have no blocks or points")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if b := tr.Find(geom.Point{}); b != nil {
		t.Error("Find on empty tree should be nil")
	}
	if _, _, ok := tr.ScanMinDist(geom.Point{}).Next(); ok {
		t.Error("scan on empty tree should be exhausted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := buildTestTree()
	tr.Blocks()[1].Count = 99
	if err := tr.Validate(); err == nil {
		t.Error("Validate should reject Count != len(Points)")
	}
}

// Property: on a randomly built quadtree-shaped hierarchy, ScanMinDist
// yields every block exactly once in non-decreasing MINDIST order, from both
// point and rect origins.
func TestScanOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		tr := randomHierarchy(local, geom.NewRect(0, 0, 100, 100), 3)
		origins := []geom.Origin{
			geom.Point{X: local.Float64() * 120, Y: local.Float64() * 120},
			geom.NewRect(local.Float64()*50, local.Float64()*50,
				50+local.Float64()*50, 50+local.Float64()*50),
		}
		for _, from := range origins {
			scan := tr.ScanMinDist(from)
			last := -1.0
			n := 0
			for {
				b, d, ok := scan.Next()
				if !ok {
					break
				}
				if d < last-1e-12 || d != from.MinDistTo(b.Bounds) {
					return false
				}
				last = d
				n++
			}
			if n != tr.NumBlocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// randomHierarchy builds a random recursive quadrant decomposition.
func randomHierarchy(rng *rand.Rand, bounds geom.Rect, depth int) *Tree {
	var build func(b geom.Rect, d int) *Node
	build = func(b geom.Rect, d int) *Node {
		if d == 0 || rng.Intn(3) == 0 {
			return &Node{Bounds: b, Block: &Block{Bounds: b, Count: rng.Intn(10)}}
		}
		quads := b.Quadrants()
		n := &Node{Bounds: b}
		for _, q := range quads {
			n.Children = append(n.Children, build(q, d-1))
		}
		return n
	}
	return New(build(bounds, depth), true)
}
