package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"knncost/internal/aknn"
	"knncost/internal/core"
	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
	"knncost/internal/oracle"
	"knncost/internal/quadtree"
)

// AccuracyConfig sizes the estimator-accuracy audit. The zero value selects
// defaults matched to the oracle test corpus, so the audit and the
// differential tests exercise the same regime.
type AccuracyConfig struct {
	Seed       int64
	Points     int // points per corpus workload
	Queries    int // queries per corpus workload
	Capacity   int // quadtree block capacity
	MaxK       int // largest catalog-maintained k
	SampleSize int // join-estimator sample size
	GridSize   int // virtual-grid dimension (GridSize x GridSize)
	// Techniques restricts the audit to the named techniques — engine
	// registry names or aliases, resolved by ResolveAccuracyTechniques.
	// Empty means all. A restricted report must not be gated against a
	// full baseline (missing rows fail CompareAccuracy by design).
	Techniques []string
	// ResolutionRungs is how many steps of the store tuner's Coarser
	// ladder get their own per-resolution report rows (technique@rung),
	// pinning the accuracy envelope of space-tuned relations. Zero means
	// the default; negative disables the rung rows. Rung rows run in
	// unfiltered audits only, like staircase_center_quadrant.
	ResolutionRungs int
}

func (c AccuracyConfig) withDefaults() AccuracyConfig {
	if c.Points <= 0 {
		c.Points = 600
	}
	if c.Queries <= 0 {
		c.Queries = 24
	}
	if c.Capacity <= 0 {
		c.Capacity = 32
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 7
	}
	if c.GridSize <= 0 {
		c.GridSize = 5
	}
	if c.ResolutionRungs == 0 {
		c.ResolutionRungs = 3
	}
	return c
}

// resolutionRungs walks the tuner's Coarser ladder from the audit's full
// resolution and returns the first n distinct rungs — the resolutions a
// space-tuned relation can actually be serving at.
func (c AccuracyConfig) resolutionRungs() []core.Resolution {
	full := core.Resolution{MaxK: c.MaxK, GridSize: c.GridSize}.Canon()
	var rungs []core.Resolution
	prev := full
	for i := 0; i < c.ResolutionRungs; i++ {
		next := prev.Coarser()
		if next == prev {
			break // ladder exhausted
		}
		rungs = append(rungs, next)
		prev = next
	}
	return rungs
}

// Quantiles summarizes a q-error distribution. Every field is >= 1 by
// construction (a q-error is max(est/actual, actual/est)).
type Quantiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// TechniqueAccuracy is the recorded accuracy of one estimation technique
// across the whole corpus.
type TechniqueAccuracy struct {
	Technique string    `json:"technique"`
	Samples   int       `json:"samples"`
	QError    Quantiles `json:"q_error"`
}

// AccuracyReport is the machine-readable result of one accuracy audit:
// per-technique q-error quantiles against oracle ground truth, plus the
// exact-equality invariants checked along the way. It is the unit the
// regression gate diffs against the checked-in baseline.
type AccuracyReport struct {
	Seed       int64               `json:"seed"`
	Invariants int                 `json:"invariants_checked"`
	Violations []string            `json:"violations,omitempty"`
	Techniques []TechniqueAccuracy `json:"techniques"`
}

// maxViolations caps the recorded violation strings; past the cap only the
// count grows (via the trailing "... and N more" entry).
const maxViolations = 20

// accuracyRun accumulates samples and invariant outcomes.
type accuracyRun struct {
	qerrs      map[string][]float64
	order      []string // technique registration order, for stable output
	invariants int
	violations []string
	suppressed int
}

func newAccuracyRun() *accuracyRun {
	return &accuracyRun{qerrs: make(map[string][]float64)}
}

func (a *accuracyRun) sample(technique string, est, truth float64) {
	if _, ok := a.qerrs[technique]; !ok {
		a.order = append(a.order, technique)
	}
	a.qerrs[technique] = append(a.qerrs[technique], qError(est, truth))
}

// check records one exact-equality invariant: ok must hold, otherwise the
// formatted description becomes a violation.
func (a *accuracyRun) check(ok bool, format string, args ...any) {
	a.invariants++
	if ok {
		return
	}
	if len(a.violations) >= maxViolations {
		a.suppressed++
		return
	}
	a.violations = append(a.violations, fmt.Sprintf(format, args...))
}

func (a *accuracyRun) report(seed int64) AccuracyReport {
	rep := AccuracyReport{Seed: seed, Invariants: a.invariants, Violations: a.violations}
	if a.suppressed > 0 {
		rep.Violations = append(rep.Violations, fmt.Sprintf("... and %d more violations", a.suppressed))
	}
	for _, name := range a.order {
		samples := a.qerrs[name]
		rep.Techniques = append(rep.Techniques, TechniqueAccuracy{
			Technique: name,
			Samples:   len(samples),
			QError:    computeQuantiles(samples),
		})
	}
	return rep
}

// qError is the symmetric relative error max(est/truth, truth/est), the
// accuracy measure used throughout the paper's evaluation. Non-positive
// inputs (which the invariant checks flag separately) map to +Inf so they
// can never masquerade as accurate.
func qError(est, truth float64) float64 {
	if est <= 0 || truth <= 0 || math.IsNaN(est) || math.IsInf(est, 0) {
		return math.Inf(1)
	}
	return math.Max(est/truth, truth/est)
}

func computeQuantiles(samples []float64) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return Quantiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}

// staircaseTechniques pairs the production staircase modes with their
// oracle mirrors.
var staircaseTechniques = []struct {
	name       string
	coreMode   core.StaircaseMode
	oracleMode oracle.StaircaseMode
}{
	{"staircase_center_corners", core.ModeCenterCorners, oracle.ModeCenterCorners},
	{"staircase_center_only", core.ModeCenterOnly, oracle.ModeCenterOnly},
	{"staircase_center_quadrant", core.ModeCenterQuadrant, oracle.ModeCenterQuadrant},
}

// accuracyRows maps each engine registry technique to the accuracy-report
// row(s) it produces. staircase_center_quadrant is a report-only variant
// with no registry name; it runs in unfiltered audits only.
var accuracyRows = map[string][]string{
	engine.TechStaircaseCC:  {"staircase_center_corners"},
	engine.TechStaircaseC:   {"staircase_center_only"},
	engine.TechDensity:      {"density"},
	engine.TechBlockSample:  {"join_block_sample"},
	engine.TechCatalogMerge: {"join_catalog_merge"},
	engine.TechVirtualGrid:  {"join_virtual_grid"},
	engine.TechAknnBounds:   {"join_aknn_bounds"},
}

// ResolveAccuracyTechniques resolves technique names through the engine
// registry (canonical names or aliases, case-insensitive) and returns the
// set of accuracy-report rows they cover — the one place the harness and
// its CLIs translate user-facing technique names. Empty input means "no
// filter" and returns nil.
func ResolveAccuracyTechniques(names []string) (map[string]bool, error) {
	if len(names) == 0 {
		return nil, nil
	}
	include := make(map[string]bool)
	for _, n := range names {
		if t, err := engine.LookupSelect(n); err == nil {
			for _, r := range accuracyRows[t.Name] {
				include[r] = true
			}
			continue
		}
		if t, err := engine.LookupJoin(n); err == nil {
			for _, r := range accuracyRows[t.Name] {
				include[r] = true
			}
			continue
		}
		return nil, fmt.Errorf("harness: unknown technique %q (select: %s; join: %s)",
			n, strings.Join(engine.SelectNames(), ", "), strings.Join(engine.JoinNames(), ", "))
	}
	return include, nil
}

// RunAccuracy audits every estimation technique against the brute-force
// oracle on the deterministic corpus: it checks the exact-equality
// invariants (ground-truth costs match the literal simulation, context and
// batch variants match their plain counterparts, every estimator matches
// its slow reference implementation) and collects per-technique q-error
// distributions against true costs. The same seed always produces the same
// report, so reports are diffable across commits.
func RunAccuracy(cfg AccuracyConfig) (AccuracyReport, error) {
	cfg = cfg.withDefaults()
	filter, err := ResolveAccuracyTechniques(cfg.Techniques)
	if err != nil {
		return AccuracyReport{}, err
	}
	include := func(row string) bool { return filter == nil || filter[row] }
	run := newAccuracyRun()
	ws := oracle.Corpus(cfg.Seed, cfg.Points, cfg.Queries)
	trees := make([]*index.Tree, len(ws))
	for i, w := range ws {
		trees[i] = quadtree.Build(w.Points, quadtree.Options{Capacity: cfg.Capacity}).Index()
		if err := trees[i].Validate(); err != nil {
			return AccuracyReport{}, fmt.Errorf("harness: accuracy corpus %s: %w", w.Name, err)
		}
	}
	ctx := context.Background()
	for i, w := range ws {
		tree := trees[i]
		count := tree.CountTree()
		density := core.NewDensityBased(count)
		stairs := make([]*core.Staircase, len(staircaseTechniques))
		for j, tech := range staircaseTechniques {
			if !include(tech.name) {
				continue
			}
			s, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: cfg.MaxK, Mode: tech.coreMode})
			if err != nil {
				return AccuracyReport{}, fmt.Errorf("harness: accuracy %s build: %w", tech.name, err)
			}
			stairs[j] = s
		}
		// Per-resolution rows: the space tuner serves coarsened catalogs,
		// so each distinct staircase rung on its ladder gets its own row —
		// the baseline then pins the accuracy envelope of tuned-down
		// relations, not just the declared resolution.
		type stairRung struct {
			name string
			s    *core.Staircase
			maxK int
		}
		var stairRungs []stairRung
		if filter == nil {
			seenK := map[int]bool{cfg.MaxK: true}
			for _, rung := range cfg.resolutionRungs() {
				if seenK[rung.MaxK] {
					continue
				}
				seenK[rung.MaxK] = true
				s, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: rung.MaxK, Mode: core.ModeCenterCorners})
				if err != nil {
					return AccuracyReport{}, fmt.Errorf("harness: accuracy rung k%d build: %w", rung.MaxK, err)
				}
				stairRungs = append(stairRungs, stairRung{
					name: fmt.Sprintf("staircase_center_corners@k%d", rung.MaxK),
					s:    s, maxK: rung.MaxK,
				})
			}
		}
		for _, q := range w.Queries {
			for _, k := range w.Ks {
				truth := oracle.SelectCost(tree, q, k)
				run.check(knn.SelectCost(tree, q, k) == truth,
					"%s: SelectCost(%v, k=%d) != oracle %d", w.Name, q, k, truth)
				ctxCost, err := knn.SelectCostContext(ctx, tree, q, k)
				run.check(err == nil && ctxCost == truth,
					"%s: SelectCostContext(%v, k=%d) = %d,%v; plain %d", w.Name, q, k, ctxCost, err, truth)

				for j, tech := range staircaseTechniques {
					if stairs[j] == nil {
						continue
					}
					got, err := stairs[j].EstimateSelect(q, k)
					want, wantErr := oracle.StaircaseEstimate(tree, tech.oracleMode, q, k, cfg.MaxK,
						func(p geom.Point, kk int) (float64, error) { return oracle.DensityEstimate(count, p, kk) })
					run.check(err == nil && wantErr == nil && got == want,
						"%s: %s(%v, k=%d) = %v,%v; oracle %v,%v", w.Name, tech.name, q, k, got, err, want, wantErr)
					run.sample(tech.name, got, float64(truth))
				}
				for _, rung := range stairRungs {
					got, err := rung.s.EstimateSelect(q, k)
					want, wantErr := oracle.StaircaseEstimate(tree, oracle.ModeCenterCorners, q, k, rung.maxK,
						func(p geom.Point, kk int) (float64, error) { return oracle.DensityEstimate(count, p, kk) })
					run.check(err == nil && wantErr == nil && got == want,
						"%s: %s(%v, k=%d) = %v,%v; oracle %v,%v", w.Name, rung.name, q, k, got, err, want, wantErr)
					run.sample(rung.name, got, float64(truth))
				}
				if include("density") {
					got, err := density.EstimateSelect(q, k)
					want, wantErr := oracle.DensityEstimate(count, q, k)
					run.check(err == nil && wantErr == nil && got == want,
						"%s: density(%v, k=%d) = %v,%v; oracle %v,%v", w.Name, q, k, got, err, want, wantErr)
					run.sample("density", got, float64(truth))
				}
			}
		}

		// Batch estimation must be indistinguishable from sequential calls,
		// at any parallelism, with and without a context. Uses the first
		// staircase the filter kept (skipped when none did).
		var batchStair *core.Staircase
		for _, s := range stairs {
			if s != nil {
				batchStair = s
				break
			}
		}
		if batchStair != nil {
			var batchQs []core.SelectQuery
			for qi, q := range w.Queries {
				batchQs = append(batchQs, core.SelectQuery{Point: q, K: w.Ks[qi%len(w.Ks)]})
			}
			batchQs = append(batchQs, core.SelectQuery{Point: w.Queries[0], K: 0}) // error slot
			seq := make([]core.SelectResult, len(batchQs))
			for qi, bq := range batchQs {
				blocks, err := batchStair.EstimateSelect(bq.Point, bq.K)
				seq[qi] = core.SelectResult{Blocks: blocks, Err: err}
			}
			for _, par := range []int{1, 4} {
				batch := core.EstimateSelectBatch(batchStair, batchQs, par)
				run.check(batchResultsEqual(batch, seq),
					"%s: EstimateSelectBatch(parallelism=%d) != sequential", w.Name, par)
				batchCtx, err := core.EstimateSelectBatchContext(ctx, batchStair, batchQs, par)
				run.check(err == nil && batchResultsEqual(batchCtx, seq),
					"%s: EstimateSelectBatchContext(parallelism=%d) != sequential (%v)", w.Name, par, err)
			}
		}

		// Join techniques, against the next workload as inner relation.
		// Artifacts are built only for rows the filter kept; the whole
		// block is skipped when no join technique is included.
		if !include("join_block_sample") && !include("join_catalog_merge") &&
			!include("join_virtual_grid") && !include("join_aknn_bounds") {
			continue
		}
		inner := trees[(i+1)%len(trees)].CountTree()
		// Each technique carries its own ground truth: the three locality
		// techniques estimate the locality join's block-scan cost, while
		// aknn-bounds estimates the bounds-only AkNN join's point-scan
		// cost — different evaluation strategies, different true costs.
		type joinTech struct {
			name  string
			est   core.JoinEstimator
			ref   func(int) (float64, error)
			truth func(int) float64
		}
		localityTruth := func(k int) float64 { return float64(oracle.JoinCost(count, inner, k)) }
		var joinTechs []joinTech
		if include("join_block_sample") {
			joinTechs = append(joinTechs, joinTech{"join_block_sample",
				core.NewBlockSample(count, inner, cfg.SampleSize),
				func(k int) (float64, error) {
					return oracle.BlockSampleEstimate(count, inner, cfg.SampleSize, k)
				}, localityTruth})
		}
		if include("join_catalog_merge") {
			cm, err := core.BuildCatalogMerge(count, inner, cfg.SampleSize, cfg.MaxK)
			if err != nil {
				return AccuracyReport{}, fmt.Errorf("harness: accuracy catalog-merge build: %w", err)
			}
			joinTechs = append(joinTechs, joinTech{"join_catalog_merge", cm,
				func(k int) (float64, error) {
					return oracle.CatalogMergeEstimate(count, inner, cfg.SampleSize, cfg.MaxK, k)
				}, localityTruth})
		}
		if include("join_virtual_grid") {
			vg, err := core.BuildVirtualGrid(inner, cfg.GridSize, cfg.GridSize, cfg.MaxK)
			if err != nil {
				return AccuracyReport{}, fmt.Errorf("harness: accuracy virtual-grid build: %w", err)
			}
			joinTechs = append(joinTechs, joinTech{"join_virtual_grid", vg.Bind(count),
				func(k int) (float64, error) {
					return oracle.VirtualGridEstimate(count, inner, cfg.GridSize, cfg.GridSize, cfg.MaxK, k)
				}, localityTruth})
		}
		if include("join_aknn_bounds") {
			sum := aknn.BuildSummary(inner)
			joinTechs = append(joinTechs, joinTech{"join_aknn_bounds",
				sum.Bind(count, cfg.SampleSize),
				func(k int) (float64, error) {
					return oracle.AknnBoundsEstimate(count, inner, cfg.SampleSize, k)
				},
				func(k int) float64 { return float64(oracle.AknnJoinCost(count, inner, k)) }})
		}
		// Per-resolution join rows, mirroring the staircase rungs above: a
		// distinct coarsened grid gets an oracle-checked row; a distinct
		// capacity-bounded aknn summary has no oracle mirror, so its row is
		// sample-only (its q-error quantiles still gate via the baseline).
		if filter == nil {
			aknnTruth := func(k int) float64 { return float64(oracle.AknnJoinCost(count, inner, k)) }
			seenG := map[int]bool{cfg.GridSize: true}
			seenA := map[int]bool{0: true}
			for _, rung := range cfg.resolutionRungs() {
				if !seenG[rung.GridSize] {
					seenG[rung.GridSize] = true
					g := rung.GridSize
					vg, err := core.BuildVirtualGrid(inner, g, g, cfg.MaxK)
					if err != nil {
						return AccuracyReport{}, fmt.Errorf("harness: accuracy rung g%d build: %w", g, err)
					}
					joinTechs = append(joinTechs, joinTech{fmt.Sprintf("join_virtual_grid@g%d", g),
						vg.Bind(count),
						func(k int) (float64, error) {
							return oracle.VirtualGridEstimate(count, inner, g, g, cfg.MaxK, k)
						}, localityTruth})
				}
				if !seenA[rung.AknnCapacity] {
					seenA[rung.AknnCapacity] = true
					sum := aknn.BuildSummaryCapacity(inner, rung.AknnCapacity)
					joinTechs = append(joinTechs, joinTech{fmt.Sprintf("join_aknn_bounds@a%d", rung.AknnCapacity),
						sum.Bind(count, cfg.SampleSize), nil, aknnTruth})
				}
			}
		}
		for _, k := range w.Ks {
			truth := oracle.JoinCost(count, inner, k)
			run.check(knnjoin.Cost(count, inner, k) == truth,
				"%s: join Cost(k=%d) != oracle %d", w.Name, k, truth)
			ctxCost, err := knnjoin.CostContext(ctx, count, inner, k)
			run.check(err == nil && ctxCost == truth,
				"%s: join CostContext(k=%d) = %d,%v; plain %d", w.Name, k, ctxCost, err, truth)
			if include("join_aknn_bounds") {
				aknnTruth := oracle.AknnJoinCost(count, inner, k)
				run.check(aknn.Cost(count, inner, k) == aknnTruth,
					"%s: aknn Cost(k=%d) != oracle %d", w.Name, k, aknnTruth)
				aknnCtx, err := aknn.CostContext(ctx, count, inner, k)
				run.check(err == nil && aknnCtx == aknnTruth,
					"%s: aknn CostContext(k=%d) = %d,%v; plain %d", w.Name, k, aknnCtx, err, aknnTruth)
			}

			for _, tech := range joinTechs {
				got, err := tech.est.EstimateJoin(k)
				if tech.ref != nil {
					want, wantErr := tech.ref(k)
					run.check(err == nil && wantErr == nil && got == want,
						"%s: %s(k=%d) = %v,%v; oracle %v,%v", w.Name, tech.name, k, got, err, want, wantErr)
				} else {
					run.check(err == nil && got > 0,
						"%s: %s(k=%d) = %v,%v; want a positive estimate", w.Name, tech.name, k, got, err)
				}
				run.sample(tech.name, got, tech.truth(k))
			}
		}
	}
	return run.report(cfg.Seed), nil
}

func batchResultsEqual(a, b []core.SelectResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Blocks != b[i].Blocks {
			return false
		}
		aErr, bErr := a[i].Err, b[i].Err
		if (aErr == nil) != (bErr == nil) {
			return false
		}
		if aErr != nil && aErr.Error() != bErr.Error() {
			return false
		}
	}
	return true
}

// WriteAccuracyJSON writes the report as ACCURACY_<date>.json in dir (""
// means the working directory) and returns the path. Like BENCH_<date>.json
// this is the diffable artifact a run leaves behind.
func WriteAccuracyJSON(dir string, rep AccuracyReport) (string, error) {
	name := fmt.Sprintf("ACCURACY_%s.json", time.Now().Format("2006-01-02"))
	path := filepath.Join(dir, name)
	return path, writeAccuracyFile(path, rep)
}

// WriteAccuracyBaseline writes the report to an explicit path — used by the
// gate's -update-baseline mode to refresh the checked-in golden file.
func WriteAccuracyBaseline(path string, rep AccuracyReport) error {
	return writeAccuracyFile(path, rep)
}

func writeAccuracyFile(path string, rep AccuracyReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadAccuracyBaseline reads a report previously written by
// WriteAccuracyBaseline or WriteAccuracyJSON.
func LoadAccuracyBaseline(path string) (AccuracyReport, error) {
	var rep AccuracyReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("harness: baseline %s: %w", path, err)
	}
	return rep, nil
}

// CompareAccuracy is the regression gate: it returns one failure string per
// broken condition, or nil when the report passes against the baseline.
// A report fails if any exact-equality invariant was violated, if a
// baseline technique disappeared or its sample count shrank, or if any
// q-error quantile degraded beyond tol (a multiplicative tolerance,
// e.g. 1.10 allows 10% drift; improvements never fail).
func CompareAccuracy(rep, baseline AccuracyReport, tol float64) []string {
	var failures []string
	for _, v := range rep.Violations {
		failures = append(failures, "invariant violated: "+v)
	}
	got := make(map[string]TechniqueAccuracy, len(rep.Techniques))
	for _, t := range rep.Techniques {
		got[t.Technique] = t
	}
	for _, base := range baseline.Techniques {
		t, ok := got[base.Technique]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: technique missing from report", base.Technique))
			continue
		}
		if t.Samples < base.Samples {
			failures = append(failures, fmt.Sprintf("%s: sample count shrank from %d to %d",
				base.Technique, base.Samples, t.Samples))
		}
		for _, q := range []struct {
			name      string
			got, base float64
		}{
			{"p50", t.QError.P50, base.QError.P50},
			{"p90", t.QError.P90, base.QError.P90},
			{"p99", t.QError.P99, base.QError.P99},
			{"max", t.QError.Max, base.QError.Max},
			{"mean", t.QError.Mean, base.QError.Mean},
		} {
			if q.got > q.base*tol+1e-9 {
				failures = append(failures, fmt.Sprintf("%s: q-error %s degraded from %.4f to %.4f (tol %.2f)",
					base.Technique, q.name, q.base, q.got, tol))
			}
		}
	}
	return failures
}

// FormatAccuracyTable renders the per-technique pass/fail table the gate
// prints: q-error quantiles per technique, each row marked PASS, FAIL or
// NEW (not in the baseline), followed by the invariant summary line.
func FormatAccuracyTable(rep, baseline AccuracyReport, tol float64) string {
	byName := make(map[string]TechniqueAccuracy, len(baseline.Techniques))
	for _, t := range baseline.Techniques {
		byName[t.Technique] = t
	}
	failed := make(map[string]bool)
	for _, f := range CompareAccuracy(rep, baseline, tol) {
		for _, t := range rep.Techniques {
			if len(f) > len(t.Technique) && f[:len(t.Technique)] == t.Technique {
				failed[t.Technique] = true
			}
		}
	}
	out := fmt.Sprintf("%-26s %8s %8s %8s %8s %8s %8s  %s\n",
		"technique", "samples", "p50", "p90", "p99", "max", "mean", "status")
	for _, t := range rep.Techniques {
		status := "PASS"
		if _, ok := byName[t.Technique]; !ok {
			status = "NEW"
		}
		if failed[t.Technique] {
			status = "FAIL"
		}
		out += fmt.Sprintf("%-26s %8d %8.3f %8.3f %8.3f %8.3f %8.3f  %s\n",
			t.Technique, t.Samples, t.QError.P50, t.QError.P90, t.QError.P99, t.QError.Max, t.QError.Mean, status)
	}
	status := "PASS"
	if len(rep.Violations) > 0 {
		status = "FAIL"
	}
	out += fmt.Sprintf("%-26s %8d %50s  %s\n", "exact invariants", rep.Invariants, "", status)
	return out
}
