package harness

import (
	"fmt"

	"knncost/internal/core"
	"knncost/internal/datagen"
	"knncost/internal/knn"
	"knncost/internal/quadtree"
)

// CapacitySweep is an extension experiment that explains the Figure 11
// deviation recorded in EXPERIMENTS.md: it sweeps the block capacity at a
// fixed dataset size and reports each select estimator's error ratio next
// to the mean true cost. As capacity grows toward the paper's regime
// (capacity ≈ MAX_K), typical costs shrink toward a handful of blocks and
// relative error becomes dominated by ±1-block absolute differences —
// hitting the Center+Corners interpolation hardest.
func CapacitySweep(e *Env) (*Table, error) {
	cfg := e.cfg
	pts := e.Dataset(cfg.MaxScale)
	t := &Table{
		ID: "capacity",
		Title: fmt.Sprintf("select estimation error vs block capacity (%d points, %d queries, k in [1,%d])",
			len(pts), cfg.SelectQueries, cfg.MaxK),
		Columns: []string{"capacity", "blocks", "mean_actual_cost",
			"err_staircase_cc", "err_staircase_co", "err_density"},
	}
	for _, capacity := range []int{64, 128, 256, 512, 1024} {
		tree := quadtree.Build(pts, quadtree.Options{
			Capacity: capacity,
			Bounds:   datagen.WorldBounds,
		}).Index()
		cc, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: cfg.MaxK, Mode: core.ModeCenterCorners})
		if err != nil {
			return nil, err
		}
		co, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: cfg.MaxK, Mode: core.ModeCenterOnly})
		if err != nil {
			return nil, err
		}
		density := core.NewDensityBased(tree.CountTree())

		rng := e.rng(int64(7000 + capacity))
		queries := e.queryPoints(cfg.SelectQueries, cfg.MaxScale, rng)
		var sumCC, sumCO, sumD, sumActual float64
		counted := 0
		for _, q := range queries {
			k := 1 + rng.Intn(cfg.MaxK)
			actual := float64(knn.SelectCost(tree, q, k))
			if actual == 0 {
				continue
			}
			est, err := cc.EstimateSelect(q, k)
			if err != nil {
				return nil, err
			}
			sumCC += errRatio(est, actual)
			est, err = co.EstimateSelect(q, k)
			if err != nil {
				return nil, err
			}
			sumCO += errRatio(est, actual)
			est, err = density.EstimateSelect(q, k)
			if err != nil {
				return nil, err
			}
			sumD += errRatio(est, actual)
			sumActual += actual
			counted++
		}
		n := float64(counted)
		t.AddRow(fmt.Sprintf("%d", capacity),
			fmt.Sprintf("%d", tree.NumBlocks()),
			fmt.Sprintf("%.1f", sumActual/n),
			fmt.Sprintf("%.3f", sumCC/n),
			fmt.Sprintf("%.3f", sumCO/n),
			fmt.Sprintf("%.3f", sumD/n))
	}
	return t, nil
}
