package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FigureIDs lists every experiment the harness can run, in paper order.
func FigureIDs() []string {
	ids := make([]string, 0, len(figures))
	for id := range figures {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// figures maps experiment IDs to runners. Each runner returns the tables it
// produced (fig10 returns none: it writes an SVG next to the CSV output).
var figures = map[string]func(e *Env, opts RunOptions) ([]*Table, error){
	"fig2": func(e *Env, _ RunOptions) ([]*Table, error) {
		return []*Table{Fig02(e)}, nil
	},
	"fig4": func(e *Env, _ RunOptions) ([]*Table, error) {
		return []*Table{Fig04(e)}, nil
	},
	"fig7": func(e *Env, _ RunOptions) ([]*Table, error) {
		return []*Table{Fig07(e)}, nil
	},
	"fig10": func(e *Env, opts RunOptions) ([]*Table, error) {
		path := filepath.Join(opts.OutDir, "fig10.svg")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := Fig10(e, f); err != nil {
			return nil, err
		}
		fmt.Fprintf(opts.Stdout, "fig10 — dataset + quadtree decomposition written to %s\n", path)
		return nil, f.Close()
	},
	"fig11":    one(Fig11),
	"fig12":    one(Fig12),
	"fig13":    one(Fig13),
	"fig14":    one(Fig14),
	"fig15":    one(Fig15),
	"fig16":    one(Fig16),
	"fig17":    one(Fig17),
	"fig18":    one(Fig18),
	"fig19":    one(Fig19),
	"fig20":    one(Fig20),
	"fig21":    one(Fig21),
	"fig22":    two(Fig22),
	"fig23":    two(Fig23),
	"fig24":    one(Fig24),
	"ablation": one(Ablation),
	"capacity": one(CapacitySweep),
}

func one(f func(*Env) (*Table, error)) func(*Env, RunOptions) ([]*Table, error) {
	return func(e *Env, _ RunOptions) ([]*Table, error) {
		t, err := f(e)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

func two(f func(*Env) (*Table, *Table, error)) func(*Env, RunOptions) ([]*Table, error) {
	return func(e *Env, _ RunOptions) ([]*Table, error) {
		a, b, err := f(e)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	}
}

// RunOptions configure Run.
type RunOptions struct {
	// Stdout receives the aligned-text tables. Nil means os.Stdout.
	Stdout io.Writer
	// OutDir, when non-empty, receives one CSV per table (and fig10.svg).
	OutDir string
}

// Run executes the named experiments (IDs as in FigureIDs; "all" runs
// everything) against a shared Env, printing each table and optionally
// writing CSVs.
func Run(e *Env, ids []string, opts RunOptions) error {
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = FigureIDs()
	}
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		runner, ok := figures[id]
		if !ok {
			return fmt.Errorf("harness: unknown experiment %q (known: %v)", id, FigureIDs())
		}
		tables, err := runner(e, opts)
		if err != nil {
			return fmt.Errorf("harness: %s: %w", id, err)
		}
		for _, t := range tables {
			if err := t.Fprint(opts.Stdout); err != nil {
				return err
			}
			fmt.Fprintln(opts.Stdout)
			if opts.OutDir != "" {
				path := filepath.Join(opts.OutDir, t.ID+".csv")
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := t.CSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
