package harness

import (
	"path/filepath"
	"strings"
	"testing"
)

// smallAccuracy keeps the audit fast for unit tests while still covering
// every technique and invariant family.
func smallAccuracy(t *testing.T) AccuracyReport {
	t.Helper()
	rep, err := RunAccuracy(AccuracyConfig{Seed: 7, Points: 120, Queries: 6})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunAccuracyInvariantsHold(t *testing.T) {
	rep := smallAccuracy(t)
	if len(rep.Violations) != 0 {
		t.Fatalf("accuracy audit reported violations: %v", rep.Violations)
	}
	if rep.Invariants == 0 {
		t.Fatal("accuracy audit checked no invariants")
	}
	want := []string{
		"staircase_center_corners", "staircase_center_only", "staircase_center_quadrant",
		"density", "join_block_sample", "join_catalog_merge", "join_virtual_grid",
	}
	byName := make(map[string]TechniqueAccuracy)
	for _, tech := range rep.Techniques {
		byName[tech.Technique] = tech
	}
	for _, name := range want {
		tech, ok := byName[name]
		if !ok {
			t.Fatalf("technique %s missing from report (have %v)", name, rep.Techniques)
		}
		if tech.Samples == 0 {
			t.Fatalf("technique %s has no samples", name)
		}
		q := tech.QError
		// Every q-error is >= 1 by definition, quantiles are ordered.
		if q.P50 < 1 || q.P90 < q.P50 || q.P99 < q.P90 || q.Max < q.P99 || q.Mean < 1 {
			t.Fatalf("technique %s has malformed quantiles %+v", name, q)
		}
	}
}

func TestRunAccuracyDeterministic(t *testing.T) {
	a := smallAccuracy(t)
	b := smallAccuracy(t)
	if len(a.Techniques) != len(b.Techniques) {
		t.Fatalf("runs differ in technique count: %d vs %d", len(a.Techniques), len(b.Techniques))
	}
	for i := range a.Techniques {
		if a.Techniques[i] != b.Techniques[i] {
			t.Fatalf("runs differ for %s: %+v vs %+v",
				a.Techniques[i].Technique, a.Techniques[i], b.Techniques[i])
		}
	}
}

func TestAccuracyBaselineRoundTrip(t *testing.T) {
	rep := smallAccuracy(t)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteAccuracyBaseline(path, rep); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAccuracyBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if failures := CompareAccuracy(rep, loaded, 1.0); len(failures) != 0 {
		t.Fatalf("report does not pass against its own round-tripped baseline: %v", failures)
	}
}

func TestCompareAccuracyDetectsRegressions(t *testing.T) {
	rep := smallAccuracy(t)
	// A degraded quantile beyond tolerance must fail.
	tightened := rep
	tightened.Techniques = append([]TechniqueAccuracy(nil), rep.Techniques...)
	tightened.Techniques[0].QError.P90 = rep.Techniques[0].QError.P90 / 2
	failures := CompareAccuracy(rep, tightened, 1.10)
	if len(failures) == 0 {
		t.Fatal("doubling p90 vs baseline passed the gate")
	}
	if !strings.Contains(failures[0], "degraded") {
		t.Fatalf("unexpected failure string: %q", failures[0])
	}
	// A missing technique must fail.
	short := rep
	short.Techniques = rep.Techniques[:len(rep.Techniques)-1]
	if failures := CompareAccuracy(short, rep, 1.10); len(failures) == 0 {
		t.Fatal("missing technique passed the gate")
	}
	// An invariant violation must fail regardless of quantiles.
	broken := rep
	broken.Violations = []string{"synthetic"}
	if failures := CompareAccuracy(broken, rep, 1.10); len(failures) == 0 {
		t.Fatal("invariant violation passed the gate")
	}
	// Drift within tolerance passes.
	if failures := CompareAccuracy(rep, rep, 1.10); len(failures) != 0 {
		t.Fatalf("self-comparison failed: %v", failures)
	}
}

func TestFormatAccuracyTableMarksFailures(t *testing.T) {
	rep := smallAccuracy(t)
	tightened := rep
	tightened.Techniques = append([]TechniqueAccuracy(nil), rep.Techniques...)
	tightened.Techniques[0].QError.Max = rep.Techniques[0].QError.Max / 4
	table := FormatAccuracyTable(rep, tightened, 1.10)
	if !strings.Contains(table, "FAIL") {
		t.Fatalf("table does not mark the regressed technique:\n%s", table)
	}
	if !strings.Contains(table, "PASS") {
		t.Fatalf("table has no passing rows:\n%s", table)
	}
	if !strings.Contains(table, "exact invariants") {
		t.Fatalf("table is missing the invariant summary:\n%s", table)
	}
}

func TestResolveAccuracyTechniques(t *testing.T) {
	got, err := ResolveAccuracyTechniques(nil)
	if err != nil || got != nil {
		t.Fatalf("nil filter: got %v, %v", got, err)
	}
	got, err = ResolveAccuracyTechniques([]string{"Staircase", "catalogmerge"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"staircase_center_corners": true, "join_catalog_merge": true}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for row := range want {
		if !got[row] {
			t.Errorf("row %s missing from %v", row, got)
		}
	}
	if _, err := ResolveAccuracyTechniques([]string{"nope"}); err == nil ||
		!strings.Contains(err.Error(), `unknown technique "nope"`) {
		t.Fatalf("unknown name: err = %v", err)
	}
}

// TestRunAccuracyTechniqueFilter checks a filtered audit carries exactly
// the requested rows with the same samples as a full run.
func TestRunAccuracyTechniqueFilter(t *testing.T) {
	full := smallAccuracy(t)
	rep, err := RunAccuracy(AccuracyConfig{
		Seed: 7, Points: 120, Queries: 6,
		Techniques: []string{"staircase-c", "virtual-grid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("filtered audit reported violations: %v", rep.Violations)
	}
	want := map[string]bool{"staircase_center_only": true, "join_virtual_grid": true}
	if len(rep.Techniques) != len(want) {
		t.Fatalf("filtered report rows: %v", rep.Techniques)
	}
	fullByName := make(map[string]TechniqueAccuracy)
	for _, tech := range full.Techniques {
		fullByName[tech.Technique] = tech
	}
	for _, tech := range rep.Techniques {
		if !want[tech.Technique] {
			t.Errorf("unexpected row %s in filtered report", tech.Technique)
			continue
		}
		if fullByName[tech.Technique] != tech {
			t.Errorf("%s: filtered row %+v differs from full run %+v",
				tech.Technique, tech, fullByName[tech.Technique])
		}
	}
	if _, err := RunAccuracy(AccuracyConfig{Seed: 7, Techniques: []string{"bogus"}}); err == nil {
		t.Fatal("bogus technique accepted")
	}
}
