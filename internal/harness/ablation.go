package harness

import (
	"fmt"

	"knncost/internal/core"
	"knncost/internal/knn"
)

// Ablation compares the staircase design choices the paper fixes without
// evaluating alternatives:
//
//   - corner handling: merged max over the four corners (the paper's
//     choice), the per-quadrant corner (extension), or none (center-only);
//   - alongside the density-based baseline.
//
// It reports accuracy and storage at the full scale, bucketing the error by
// the magnitude of the true cost — small-cost queries dominate the average
// error at scaled-down block capacities (see EXPERIMENTS.md).
func Ablation(e *Env) (*Table, error) {
	cfg := e.cfg
	tree := e.Tree(cfg.MaxScale)
	cc, err := e.Staircase(cfg.MaxScale, core.ModeCenterCorners)
	if err != nil {
		return nil, err
	}
	co, err := e.Staircase(cfg.MaxScale, core.ModeCenterOnly)
	if err != nil {
		return nil, err
	}
	cq, err := e.Staircase(cfg.MaxScale, core.ModeCenterQuadrant)
	if err != nil {
		return nil, err
	}
	density := core.NewDensityBased(tree.CountTree())

	var small, big, all ablationBucket
	estimators := []core.SelectEstimator{cc, co, cq, density}

	rng := e.rng(99)
	queries := e.queryPoints(cfg.SelectQueries, cfg.MaxScale, rng)
	for _, q := range queries {
		k := 1 + rng.Intn(cfg.MaxK)
		actual := float64(knn.SelectCost(tree, q, k))
		if actual == 0 {
			continue
		}
		var errs [4]float64
		for i, est := range estimators {
			v, err := est.EstimateSelect(q, k)
			if err != nil {
				return nil, err
			}
			errs[i] = errRatio(v, actual)
		}
		magnitude := &small
		if actual > 5 {
			magnitude = &big
		}
		for _, b := range []*ablationBucket{&all, magnitude} {
			for i := range errs {
				b.sum[i] += errs[i]
			}
			b.n++
		}
	}

	t := &Table{
		ID:    "ablation",
		Title: fmt.Sprintf("staircase corner-handling ablation (scale %d, %d queries)", cfg.MaxScale, cfg.SelectQueries),
		Columns: []string{"bucket", "n",
			"err_corners_max", "err_quadrant", "err_center_only", "err_density",
			"storage_corners_B", "storage_quadrant_B", "storage_center_B"},
	}
	for _, row := range []struct {
		name string
		b    *ablationBucket
	}{{"all", &all}, {"cost<=5", &small}, {"cost>5", &big}} {
		if row.b.n == 0 {
			continue
		}
		t.AddRow(row.name, fmt.Sprintf("%.0f", row.b.n),
			fmt.Sprintf("%.3f", row.b.sum[0]/row.b.n),
			fmt.Sprintf("%.3f", row.b.sum[2]/row.b.n),
			fmt.Sprintf("%.3f", row.b.sum[1]/row.b.n),
			fmt.Sprintf("%.3f", row.b.sum[3]/row.b.n),
			fmt.Sprintf("%d", cc.StorageBytes()),
			fmt.Sprintf("%d", cq.StorageBytes()),
			fmt.Sprintf("%d", co.StorageBytes()))
	}
	return t, nil
}

// ablationBucket accumulates per-estimator error sums for one cost-range
// bucket of the ablation study.
type ablationBucket struct {
	sum [4]float64
	n   float64
}
