package harness

import (
	"math/rand"
	"time"

	"knncost/internal/core"
	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

// Config scales the experiments. The defaults reproduce every figure in
// minutes on a laptop; the paper's absolute sizes (0.1B points, capacity
// 10,000, MAX_K 10,000) are scaled down proportionally as documented in
// DESIGN.md §3.
type Config struct {
	// Seed drives every random choice. The zero value means seed 1.
	Seed int64
	// PointsPerScale is the dataset increment per scale factor (the paper
	// uses 10M). Zero means 50,000.
	PointsPerScale int
	// MaxScale is the largest scale factor (the paper uses 10, reaching
	// 0.1B points). Zero means 10.
	MaxScale int
	// Capacity is the quadtree leaf capacity (the paper uses 10,000).
	// Zero means 256.
	Capacity int
	// MaxK is the largest catalog-maintained k (the paper uses 10,000).
	// Zero means 1,000.
	MaxK int
	// SelectQueries is the number of queries averaged in accuracy
	// experiments (the paper uses 100,000). Zero means 2,000.
	SelectQueries int
	// JoinPointsPerScale is the per-index dataset increment in the
	// 10-index join storage/preprocessing experiments (Figs. 20–21).
	// Zero means 10,000.
	JoinPointsPerScale int
	// JoinSchemaSize is the number of indexes in those experiments (the
	// paper uses 10). Zero means 10.
	JoinSchemaSize int
	// SampleSize is the Catalog-Merge/Block-Sample sample size where
	// fixed (the paper uses 1,000). Zero means 200.
	SampleSize int
	// GridSize is the Virtual-Grid dimension where fixed (the paper uses
	// 10). Zero means 10.
	GridSize int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PointsPerScale == 0 {
		c.PointsPerScale = 50_000
	}
	if c.MaxScale == 0 {
		c.MaxScale = 10
	}
	if c.Capacity == 0 {
		c.Capacity = 256
	}
	if c.MaxK == 0 {
		c.MaxK = 1_000
	}
	if c.SelectQueries == 0 {
		c.SelectQueries = 2_000
	}
	if c.JoinPointsPerScale == 0 {
		c.JoinPointsPerScale = 10_000
	}
	if c.JoinSchemaSize == 0 {
		c.JoinSchemaSize = 10
	}
	if c.SampleSize == 0 {
		c.SampleSize = 200
	}
	if c.GridSize == 0 {
		c.GridSize = 10
	}
	return c
}

// Quick returns a configuration small enough for tests and smoke runs.
func Quick() Config {
	return Config{
		PointsPerScale:     5_000,
		MaxScale:           3,
		Capacity:           128,
		MaxK:               300,
		SelectQueries:      300,
		JoinPointsPerScale: 4_000,
		JoinSchemaSize:     4,
		SampleSize:         100,
		GridSize:           8,
	}
}

// Env caches datasets and indexes across figure functions so a full run
// builds each index once. It mirrors the paper's methodology: one master
// dataset, inserted into the index at multiple ratios ("for scale = 1, we
// insert 10 Million points, ...").
type Env struct {
	cfg        Config
	master     []geom.Point // MaxScale * PointsPerScale points
	trees      map[int]*index.Tree
	joins      map[int][]*index.Tree // 10-index schemas by scale
	staircases map[staircaseKey]*core.Staircase
}

type staircaseKey struct {
	scale int
	mode  core.StaircaseMode
}

// NewEnv prepares an environment for the given configuration.
func NewEnv(cfg Config) *Env {
	cfg = cfg.withDefaults()
	return &Env{
		cfg:        cfg,
		trees:      map[int]*index.Tree{},
		joins:      map[int][]*index.Tree{},
		staircases: map[staircaseKey]*core.Staircase{},
	}
}

// Staircase returns a cached staircase estimator for the scale and mode.
func (e *Env) Staircase(scale int, mode core.StaircaseMode) (*core.Staircase, error) {
	key := staircaseKey{scale: scale, mode: mode}
	if s, ok := e.staircases[key]; ok {
		return s, nil
	}
	s, err := core.BuildStaircase(e.Tree(scale), core.StaircaseOptions{
		MaxK: e.cfg.MaxK,
		Mode: mode,
	})
	if err != nil {
		return nil, err
	}
	e.staircases[key] = s
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (e *Env) Config() Config { return e.cfg }

// Dataset returns the first scale*PointsPerScale points of the master
// OSM-like dataset. OSMLike shuffles its output, so a prefix is an unbiased
// sample — inserting "portions of the dataset at multiple ratios" like §5.
func (e *Env) Dataset(scale int) []geom.Point {
	want := e.cfg.MaxScale * e.cfg.PointsPerScale
	if e.master == nil {
		e.master = datagen.OSMLike(want, e.cfg.Seed)
	}
	return e.master[:scale*e.cfg.PointsPerScale]
}

// Tree returns the quadtree index over the scale's dataset.
func (e *Env) Tree(scale int) *index.Tree {
	if t, ok := e.trees[scale]; ok {
		return t
	}
	t := quadtree.Build(e.Dataset(scale), quadtree.Options{
		Capacity: e.cfg.Capacity,
		Bounds:   datagen.WorldBounds,
	}).Index()
	e.trees[scale] = t
	return t
}

// ensureJoinInner lazily builds the second full-scale dataset used as the
// inner relation of the headline join experiments (§5.2 joins "two indexes
// of 0.1 Billion points each"), caching it under scale 0 in the schema map.
func (e *Env) ensureJoinInner() *index.Tree {
	if ts, ok := e.joins[0]; ok {
		return ts[0]
	}
	pts := datagen.OSMLike(e.cfg.MaxScale*e.cfg.PointsPerScale, e.cfg.Seed+31337)
	t := quadtree.Build(pts, quadtree.Options{
		Capacity: e.cfg.Capacity,
		Bounds:   datagen.WorldBounds,
	}).Index()
	e.joins[0] = []*index.Tree{t}
	return t
}

// JoinSchema returns JoinSchemaSize independent indexes of
// scale*JoinPointsPerScale points each — the schema of Figures 20–21.
func (e *Env) JoinSchema(scale int) []*index.Tree {
	if ts, ok := e.joins[scale]; ok {
		return ts
	}
	ts := make([]*index.Tree, e.cfg.JoinSchemaSize)
	for i := range ts {
		pts := datagen.OSMLike(scale*e.cfg.JoinPointsPerScale, e.cfg.Seed+int64(100+i))
		ts[i] = quadtree.Build(pts, quadtree.Options{
			Capacity: e.cfg.Capacity,
			Bounds:   datagen.WorldBounds,
		}).Index()
	}
	e.joins[scale] = ts
	return ts
}

// rng returns a fresh deterministic source offset from the config seed, so
// each experiment's randomness is independent of execution order.
func (e *Env) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(e.cfg.Seed*7919 + offset))
}

// queryPoints draws n query locations: half uniform over the world, half
// perturbed data points, matching how location-based services see queries
// (§5 draws "queries at random").
func (e *Env) queryPoints(n int, scale int, rng *rand.Rand) []geom.Point {
	data := e.Dataset(scale)
	b := datagen.WorldBounds
	out := make([]geom.Point, n)
	for i := range out {
		if i%2 == 0 {
			out[i] = geom.Point{
				X: b.Min.X + rng.Float64()*b.Width(),
				Y: b.Min.Y + rng.Float64()*b.Height(),
			}
		} else {
			p := data[rng.Intn(len(data))]
			out[i] = geom.Point{
				X: p.X + rng.NormFloat64()*0.01*b.Width(),
				Y: p.Y + rng.NormFloat64()*0.01*b.Height(),
			}
			if !b.Contains(out[i]) {
				out[i] = p
			}
		}
	}
	return out
}

// timeOp measures the average duration of op by running it enough times to
// accumulate a stable measurement.
func timeOp(op func()) time.Duration {
	// Warm up and calibrate.
	op()
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			op()
		}
		elapsed := time.Since(start)
		if elapsed > 2*time.Millisecond || iters >= 1<<20 {
			return elapsed / time.Duration(iters)
		}
		iters *= 4
	}
}

// errRatio is the paper's accuracy metric.
func errRatio(est, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	d := est - actual
	if d < 0 {
		d = -d
	}
	return d / actual
}
