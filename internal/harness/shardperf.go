package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/service"
	"knncost/internal/shard"
	"knncost/internal/store"
)

// Shard-tier throughput measurement: the same serial 4096-query batch is
// pushed through routed topologies of increasing shard count. The batch is
// sent with Parallelism 1, so a single node answers it sequentially and
// the router's only lever is scattering contiguous chunks across shards.
//
// Each shard charges a simulated per-query block-I/O stall (the quantity
// the paper's estimators predict — Count-Index block reads of a
// disk-resident deployment). The stall is what makes the measurement
// meaningful on any host: the in-memory CPU work is pinned to however
// many cores the machine has (a single-core box can never shrink it by
// adding in-process shards), whereas the I/O stalls overlap across
// shards, so routed batch latency dropping with shard count is a direct
// measurement of scatter-gather hiding per-shard latency.

const (
	shardPerfQueries = 4096
	shardPerfPoints  = 20_000
	// shardPerfIOStall is the simulated block-read budget charged per
	// batched query on the shard that serves it.
	shardPerfIOStall = 20 * time.Microsecond
)

// RunShardPerf measures routed batch-estimate latency for each topology
// size in shardCounts (1 means router over a single shard) and returns one
// PerfResult per size, named router_batch4096_density_<n>shards.
func RunShardPerf(seed int64, shardCounts []int) ([]PerfResult, error) {
	pts := datagen.OSMLike(shardPerfPoints, seed)
	body, err := shardPerfBody(pts)
	if err != nil {
		return nil, err
	}
	results := make([]PerfResult, 0, len(shardCounts))
	for _, n := range shardCounts {
		if n < 1 {
			return nil, fmt.Errorf("harness: shard count %d", n)
		}
		r, err := runShardPerfOne(n, pts, body)
		if err != nil {
			return nil, fmt.Errorf("harness: %d-shard perf: %w", n, err)
		}
		results = append(results, r)
	}
	return results, nil
}

// simulatedIO charges the per-query block-read stall on batch-estimate
// requests: a chunk of q queries sleeps q x shardPerfIOStall before the
// service answers it, the way a disk-resident Count-Index would stall for
// every query's block walk. Chunks on different shards stall concurrently,
// which is the effect the topology sweep measures.
func simulatedIO(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/estimate/select/batch" {
			body, err := io.ReadAll(r.Body)
			r.Body.Close()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			var req service.BatchSelectRequest
			if json.Unmarshal(body, &req) == nil {
				time.Sleep(time.Duration(len(req.Queries)) * shardPerfIOStall)
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		next.ServeHTTP(w, r)
	})
}

// shardPerfBody builds the fixed batch request: a deterministic stride over
// the data points with ks across the catalog range.
func shardPerfBody(pts []geom.Point) ([]byte, error) {
	req := service.BatchSelectRequest{
		Relation:    "bench",
		Technique:   "density",
		Parallelism: 1,
	}
	for i := 0; i < shardPerfQueries; i++ {
		p := pts[(i*7919)%len(pts)]
		req.Queries = append(req.Queries, service.BatchSelectQuery{X: p.X, Y: p.Y, K: 1 + i%200})
	}
	return json.Marshal(req)
}

func runShardPerfOne(n int, pts []geom.Point, body []byte) (PerfResult, error) {
	cleanups := []func(){}
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}()

	shards := make([]shard.Shard, 0, n)
	for i := 0; i < n; i++ {
		st, err := store.New(store.Options{
			MaxK: 200, SampleSize: 100, GridSize: 10, IndexCapacity: 256,
			Bounds: datagen.WorldBounds,
		})
		if err != nil {
			return PerfResult{}, err
		}
		cleanups = append(cleanups, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			st.Close(ctx)
		})
		if _, err := st.Register("bench", pts); err != nil {
			return PerfResult{}, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		err = st.WaitReady(ctx, "bench")
		cancel()
		if err != nil {
			return PerfResult{}, err
		}
		srv := httptest.NewServer(simulatedIO(service.NewWithStore(st, service.Options{
			MaxK: 200, SampleSize: 100, GridSize: 10,
		})))
		cleanups = append(cleanups, srv.Close)
		shards = append(shards, shard.Shard{ID: fmt.Sprintf("perf-%d", i), BaseURL: srv.URL})
	}

	// Every shard owns the relation (Replicas = n), so the batch scatters
	// across all of them; hedging stays off to measure pure scatter-gather.
	rt, err := shard.New(shards, shard.Options{Replicas: n})
	if err != nil {
		return PerfResult{}, err
	}
	front := httptest.NewServer(rt)
	cleanups = append(cleanups, front.Close)

	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(front.URL+"/estimate/select/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				benchErr = fmt.Errorf("batch status %d", resp.StatusCode)
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return PerfResult{}, benchErr
	}
	return PerfResult{
		Op:          fmt.Sprintf("router_batch%d_density_%dshards", shardPerfQueries, n),
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}, nil
}

// LoadPerfJSON reads a BENCH_<date>.json file written by WritePerfJSON.
func LoadPerfJSON(path string) ([]PerfResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []PerfResult
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return results, nil
}

// ComparePerf gates cur against base: every baseline op must still be
// measured, and none may be slower than base*tol (tol 1.20 = a 20% ns/op
// regression budget; micro-benchmark noise sits well under that). Ops new
// in cur pass freely — the trajectory only ratchets what it has seen.
func ComparePerf(cur, base []PerfResult, tol float64) []string {
	byOp := make(map[string]PerfResult, len(cur))
	for _, r := range cur {
		byOp[r.Op] = r
	}
	var failures []string
	for _, b := range base {
		c, ok := byOp[b.Op]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: measured in baseline but not in this run", b.Op))
			continue
		}
		if limit := b.NsPerOp * tol; c.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op exceeds %.1f (baseline %.1f x tol %.2f)",
				b.Op, c.NsPerOp, limit, b.NsPerOp, tol))
		}
	}
	return failures
}
