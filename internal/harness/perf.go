package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"knncost/internal/aknn"
	"knncost/internal/core"
	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/optimizer"
	"knncost/internal/quadtree"
	"knncost/internal/store"
)

// PerfResult is one machine-readable microbenchmark measurement. The file
// written by WritePerfJSON accumulates one record per hot operation, so the
// performance trajectory of the estimation paths can be tracked across PRs
// by diffing BENCH_<date>.json files.
type PerfResult struct {
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// perfCase names one measured operation.
type perfCase struct {
	op string
	fn func(b *testing.B)
}

// RunPerf measures the hot operations of the library — catalog builds,
// single estimates, batch estimates, lookups — with testing.Benchmark and
// returns the results. The workload is fixed (OSM-like, 20k points,
// capacity 256, MaxK 200) so numbers are comparable across runs on the same
// machine.
func RunPerf(seed int64) ([]PerfResult, error) {
	pts := datagen.OSMLike(20_000, seed)
	tree := quadtree.Build(pts, quadtree.Options{
		Capacity: 256, Bounds: datagen.WorldBounds,
	}).Index()
	count := tree.CountTree()
	const maxK = 200

	stair, err := core.BuildStaircase(tree, core.StaircaseOptions{
		MaxK: maxK, Mode: core.ModeCenterCorners,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: perf staircase build: %w", err)
	}
	density := core.NewDensityBased(count)
	cm, err := core.BuildCatalogMerge(count, count, 100, maxK)
	if err != nil {
		return nil, fmt.Errorf("harness: perf catalog-merge build: %w", err)
	}

	// A deterministic query mix: half uniform, half data points.
	rng := rand.New(rand.NewSource(seed * 7919))
	queries := make([]core.SelectQuery, 256)
	b := datagen.WorldBounds
	for i := range queries {
		p := pts[rng.Intn(len(pts))]
		if i%2 == 0 {
			p = geom.Point{
				X: b.Min.X + rng.Float64()*b.Width(),
				Y: b.Min.Y + rng.Float64()*b.Height(),
			}
		}
		queries[i] = core.SelectQuery{Point: p, K: 1 + i%maxK}
	}
	cat := stair.CenterCatalog(queries[1].Point)

	cases := []perfCase{
		{"staircase_build_center_corners", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildStaircase(tree, core.StaircaseOptions{
					MaxK: maxK, Mode: core.ModeCenterCorners,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"estimate_select_staircase", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := stair.EstimateSelect(q.Point, q.K); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"estimate_select_density", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := density.EstimateSelect(q.Point, q.K); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"estimate_select_batch256", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stair.EstimateSelectBatch(queries, 0)
			}
		}},
		{"catalog_lookup", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cat.Lookup(1 + i%maxK)
			}
		}},
		{"locality_catalog_build", func(b *testing.B) {
			blocks := count.Blocks()
			for i := 0; i < b.N; i++ {
				core.BuildLocalityCatalog(count, blocks[i%len(blocks)].Bounds, maxK)
			}
		}},
		{"catalogmerge_build", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildCatalogMerge(count, count, 100, maxK); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"estimate_join_catalogmerge", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cm.EstimateJoin(1 + i%maxK); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"aknn_summary_build", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aknn.BuildSummary(count)
			}
		}},
		{"estimate_join_aknn_bounds", func(b *testing.B) {
			est := aknn.BuildSummary(count).Bind(count, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateJoin(1 + i%maxK); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	// The plan-cache trajectory: cold multi-predicate planning (enumerate +
	// price every alternative against the snapshots) vs a cached lookup of
	// the same shape — the spread is what the optimizer's cache buys.
	st, err := store.New(store.Options{
		MaxK: maxK, IndexCapacity: 256, Bounds: datagen.WorldBounds, CompactInterval: -1,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: perf store: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		st.Close(ctx)
	}()
	if _, err := st.Register("perf_outer", datagen.OSMLike(5_000, seed+1)); err != nil {
		return nil, fmt.Errorf("harness: perf store: %w", err)
	}
	if _, err := st.Register("perf_inner", pts); err != nil {
		return nil, fmt.Errorf("harness: perf store: %w", err)
	}
	readyCtx, cancelReady := context.WithTimeout(context.Background(), time.Minute)
	defer cancelReady()
	if err := st.WaitReady(readyCtx); err != nil {
		return nil, fmt.Errorf("harness: perf store: %w", err)
	}
	v := st.View()
	planQuery := optimizer.Query{Selects: []optimizer.SelectPredicate{
		{Relation: "perf_outer", Query: queries[0].Point, K: 10},
		{Relation: "perf_inner", Query: queries[0].Point, K: 25},
	}, Selectivity: 0.5}
	planner := optimizer.NewPlanner(0)
	if _, err := planner.Plan(v, planQuery); err != nil {
		return nil, fmt.Errorf("harness: perf plan warmup: %w", err)
	}
	cases = append(cases,
		perfCase{"plan_cold_two_select", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := optimizer.PlanOnce(v, planQuery); err != nil {
					b.Fatal(err)
				}
			}
		}},
		perfCase{"plan_cached_two_select", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := planner.Plan(v, planQuery); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)

	results := make([]PerfResult, 0, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		results = append(results, PerfResult{
			Op:          c.op,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}
	return results, nil
}

// WritePerfJSON writes results as BENCH_<date>.json in dir ("" means the
// working directory) and returns the path.
func WritePerfJSON(dir string, results []PerfResult) (string, error) {
	name := fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
