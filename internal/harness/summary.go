package harness

import (
	"fmt"
	"time"

	"knncost/internal/core"
	"knncost/internal/knn"
	"knncost/internal/knnjoin"
)

// Fig24 reproduces Figure 24, the qualitative pros/cons summary of every
// estimation technique — except that instead of Low/Medium/High labels it
// reports the measured values at a reference configuration (full scale,
// default sample and grid sizes), which is strictly more informative.
func Fig24(e *Env) (*Table, error) {
	cfg := e.cfg
	tree := e.Tree(cfg.MaxScale)
	count := tree.CountTree()
	inner := e.ensureJoinInner().CountTree()
	rng := e.rng(24)

	t := &Table{
		ID: "fig24",
		Title: fmt.Sprintf("summary of estimation techniques (scale %d, sample %d, grid %dx%d)",
			cfg.MaxScale, cfg.SampleSize, cfg.GridSize, cfg.GridSize),
		Columns: []string{"technique", "est_time_ns", "err_ratio", "storage_B", "preprocess_s"},
	}

	// --- k-NN-Select techniques ---
	queries := e.queryPoints(200, cfg.MaxScale, rng)
	ks := make([]int, len(queries))
	actuals := make([]float64, len(queries))
	for i := range queries {
		ks[i] = 1 + rng.Intn(cfg.MaxK)
		actuals[i] = float64(knn.SelectCost(tree, queries[i], ks[i]))
	}
	selectRow := func(name string, build func() (core.SelectEstimator, int, error)) error {
		start := time.Now()
		est, storage, err := build()
		if err != nil {
			return err
		}
		preprocess := time.Since(start)
		var sumErr float64
		for i := range queries {
			v, err := est.EstimateSelect(queries[i], ks[i])
			if err != nil {
				return err
			}
			sumErr += errRatio(v, actuals[i])
		}
		i := 0
		perOp := timeOp(func() {
			if _, err := est.EstimateSelect(queries[i%len(queries)], ks[i%len(ks)]); err != nil {
				panic(err)
			}
			i++
		})
		t.AddRow(name,
			fmt.Sprintf("%d", perOp.Nanoseconds()),
			fmt.Sprintf("%.3f", sumErr/float64(len(queries))),
			fmt.Sprintf("%d", storage),
			fmt.Sprintf("%.3f", preprocess.Seconds()))
		return nil
	}
	if err := selectRow("select/density-based", func() (core.SelectEstimator, int, error) {
		return core.NewDensityBased(count), 8 * count.NumBlocks(), nil
	}); err != nil {
		return nil, err
	}
	if err := selectRow("select/staircase-center", func() (core.SelectEstimator, int, error) {
		s, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: cfg.MaxK, Mode: core.ModeCenterOnly})
		if err != nil {
			return nil, 0, err
		}
		return s, s.StorageBytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := selectRow("select/staircase-corners", func() (core.SelectEstimator, int, error) {
		s, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: cfg.MaxK, Mode: core.ModeCenterCorners})
		if err != nil {
			return nil, 0, err
		}
		return s, s.StorageBytes(), nil
	}); err != nil {
		return nil, err
	}

	// --- k-NN-Join techniques ---
	joinKs := make([]int, 5)
	joinActuals := make([]float64, len(joinKs))
	for i := range joinKs {
		joinKs[i] = 1 + rng.Intn(cfg.MaxK)
		joinActuals[i] = float64(knnjoin.Cost(count, inner, joinKs[i]))
	}
	joinRow := func(name string, build func() (core.JoinEstimator, int, error)) error {
		start := time.Now()
		est, storage, err := build()
		if err != nil {
			return err
		}
		preprocess := time.Since(start)
		var sumErr float64
		for i := range joinKs {
			v, err := est.EstimateJoin(joinKs[i])
			if err != nil {
				return err
			}
			sumErr += errRatio(v, joinActuals[i])
		}
		i := 0
		perOp := timeOp(func() {
			mustJoinEstimate(est.EstimateJoin(joinKs[i%len(joinKs)]))
			i++
		})
		t.AddRow(name,
			fmt.Sprintf("%d", perOp.Nanoseconds()),
			fmt.Sprintf("%.3f", sumErr/float64(len(joinKs))),
			fmt.Sprintf("%d", storage),
			fmt.Sprintf("%.3f", preprocess.Seconds()))
		return nil
	}
	if err := joinRow("join/block-sample", func() (core.JoinEstimator, int, error) {
		return core.NewBlockSample(count, inner, cfg.SampleSize), 0, nil
	}); err != nil {
		return nil, err
	}
	if err := joinRow("join/catalog-merge", func() (core.JoinEstimator, int, error) {
		cm, err := core.BuildCatalogMerge(count, inner, cfg.SampleSize, cfg.MaxK)
		if err != nil {
			return nil, 0, err
		}
		return cm, cm.StorageBytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := joinRow("join/virtual-grid", func() (core.JoinEstimator, int, error) {
		vg, err := core.BuildVirtualGrid(inner, cfg.GridSize, cfg.GridSize, cfg.MaxK)
		if err != nil {
			return nil, 0, err
		}
		return vg.Bind(count), vg.StorageBytes(), nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}
