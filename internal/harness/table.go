// Package harness regenerates every figure of the paper's evaluation
// section (§5) against the synthetic OSM-like workload: one exported
// function per figure, each returning a Table whose rows mirror the series
// the paper plots. DESIGN.md §4 maps figures to functions; EXPERIMENTS.md
// records paper-vs-measured results.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of formatted results — one per reproduced figure.
type Table struct {
	// ID is the experiment identifier, e.g. "fig11".
	ID string
	// Title describes the experiment, matching the paper's caption.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold formatted cells, one row per x-axis value.
	Rows [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		return "  " + strings.Join(parts, " | ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(widths) + 2
	for _, wd := range widths {
		total += wd + 3
	}
	if _, err := fmt.Fprintln(w, "  "+strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
