package harness

import (
	"fmt"
	"time"

	"knncost/internal/core"
	"knncost/internal/index"
	"knncost/internal/knnjoin"
)

// Fig07 reproduces Figure 7: the locality size of one outer block is
// constant over large intervals of k.
func Fig07(e *Env) *Table {
	cfg := e.cfg
	inner := e.ensureJoinInner().CountTree()
	outer := e.Tree(cfg.MaxScale)
	rng := e.rng(7)
	// A random non-empty outer block.
	blocks := core.SampleBlocks(outer, 0)
	blk := blocks[rng.Intn(len(blocks))]
	cat := core.BuildLocalityCatalog(inner, blk.Bounds, cfg.MaxK)
	t := &Table{
		ID:      "fig07",
		Title:   fmt.Sprintf("stability of locality size over k intervals (block %d, MaxK %d)", blk.ID, cfg.MaxK),
		Columns: []string{"k_start", "k_end", "locality_size"},
	}
	for _, en := range cat.Entries() {
		t.AddRow(fmt.Sprintf("%d", en.StartK), fmt.Sprintf("%d", en.EndK), fmt.Sprintf("%d", en.Cost))
	}
	return t
}

// Fig15 reproduces Figure 15: k-NN-Join estimation accuracy vs sample size
// for the Block-Sample and Catalog-Merge techniques.
func Fig15(e *Env) (*Table, error) {
	cfg := e.cfg
	outer := e.Tree(cfg.MaxScale).CountTree()
	inner := e.ensureJoinInner().CountTree()
	rng := e.rng(15)
	// A handful of random k values, averaged ("a random value of k").
	ks := make([]int, 5)
	for i := range ks {
		ks[i] = 1 + rng.Intn(cfg.MaxK)
	}
	actuals := make([]float64, len(ks))
	for i, k := range ks {
		actuals[i] = float64(knnjoin.Cost(outer, inner, k))
	}
	t := &Table{
		ID:      "fig15",
		Title:   fmt.Sprintf("k-NN-Join estimation accuracy vs sample size (avg over k=%v)", ks),
		Columns: []string{"sample_size", "err_catalog_merge", "err_block_sample"},
	}
	maxSample := numNonEmpty(outer)
	for _, s := range sampleSweep(maxSample) {
		cm, err := core.BuildCatalogMerge(outer, inner, s, cfg.MaxK)
		if err != nil {
			return nil, err
		}
		bs := core.NewBlockSample(outer, inner, s)
		var sumCM, sumBS float64
		for i, k := range ks {
			est, err := cm.EstimateJoin(k)
			if err != nil {
				return nil, err
			}
			sumCM += errRatio(est, actuals[i])
			est, err = bs.EstimateJoin(k)
			if err != nil {
				return nil, err
			}
			sumBS += errRatio(est, actuals[i])
		}
		n := float64(len(ks))
		t.AddRow(fmt.Sprintf("%d", s),
			fmt.Sprintf("%.3f", sumCM/n),
			fmt.Sprintf("%.3f", sumBS/n))
	}
	return t, nil
}

// Fig16 reproduces Figure 16: Virtual-Grid k-NN-Join estimation accuracy vs
// grid size.
func Fig16(e *Env) (*Table, error) {
	cfg := e.cfg
	outer := e.Tree(cfg.MaxScale).CountTree()
	inner := e.ensureJoinInner().CountTree()
	rng := e.rng(16)
	ks := make([]int, 5)
	for i := range ks {
		ks[i] = 1 + rng.Intn(cfg.MaxK)
	}
	actuals := make([]float64, len(ks))
	for i, k := range ks {
		actuals[i] = float64(knnjoin.Cost(outer, inner, k))
	}
	t := &Table{
		ID:      "fig16",
		Title:   fmt.Sprintf("Virtual-Grid estimation accuracy vs grid size (avg over k=%v)", ks),
		Columns: []string{"grid", "err_virtual_grid"},
	}
	for _, g := range []int{4, 8, 12, 16, 20} {
		vg, err := core.BuildVirtualGrid(inner, g, g, cfg.MaxK)
		if err != nil {
			return nil, err
		}
		var sum float64
		for i, k := range ks {
			est, err := vg.EstimateJoin(outer, k)
			if err != nil {
				return nil, err
			}
			sum += errRatio(est, actuals[i])
		}
		t.AddRow(fmt.Sprintf("%dx%d", g, g), fmt.Sprintf("%.3f", sum/float64(len(ks))))
	}
	return t, nil
}

// Fig17 reproduces Figure 17: k-NN-Join estimation time vs k for the three
// techniques (Catalog-Merge orders of magnitude faster).
func Fig17(e *Env) (*Table, error) {
	cfg := e.cfg
	outer := e.Tree(cfg.MaxScale).CountTree()
	inner := e.ensureJoinInner().CountTree()
	cm, err := core.BuildCatalogMerge(outer, inner, cfg.SampleSize, cfg.MaxK)
	if err != nil {
		return nil, err
	}
	vg, err := core.BuildVirtualGrid(inner, cfg.GridSize, cfg.GridSize, cfg.MaxK)
	if err != nil {
		return nil, err
	}
	bs := core.NewBlockSample(outer, inner, cfg.SampleSize)
	t := &Table{
		ID:      "fig17",
		Title:   fmt.Sprintf("k-NN-Join estimation time vs k (ns/op, sample %d, grid %dx%d)", cfg.SampleSize, cfg.GridSize, cfg.GridSize),
		Columns: []string{"k", "catalog_merge_ns", "block_sample_ns", "virtual_grid_ns"},
	}
	for k := 1; k <= cfg.MaxK; k *= 4 {
		k := k
		cmT := timeOp(func() { mustJoinEstimate(cm.EstimateJoin(k)) })
		bsT := timeOp(func() { mustJoinEstimate(bs.EstimateJoin(k)) })
		vgT := timeOp(func() { mustJoinEstimate(vg.EstimateJoin(outer, k)) })
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", cmT.Nanoseconds()),
			fmt.Sprintf("%d", bsT.Nanoseconds()),
			fmt.Sprintf("%d", vgT.Nanoseconds()))
	}
	return t, nil
}

// Fig18 reproduces Figure 18: k-NN-Join estimation time vs sample size —
// Block-Sample grows, Catalog-Merge stays constant.
func Fig18(e *Env) (*Table, error) {
	cfg := e.cfg
	outer := e.Tree(cfg.MaxScale).CountTree()
	inner := e.ensureJoinInner().CountTree()
	rng := e.rng(18)
	k := 1 + rng.Intn(cfg.MaxK)
	t := &Table{
		ID:      "fig18",
		Title:   fmt.Sprintf("k-NN-Join estimation time vs sample size (ns/op, k=%d)", k),
		Columns: []string{"sample_size", "block_sample_ns", "catalog_merge_ns"},
	}
	maxSample := numNonEmpty(outer)
	for _, s := range sampleSweep(maxSample) {
		bs := core.NewBlockSample(outer, inner, s)
		cm, err := core.BuildCatalogMerge(outer, inner, s, cfg.MaxK)
		if err != nil {
			return nil, err
		}
		bsT := timeOp(func() { mustJoinEstimate(bs.EstimateJoin(k)) })
		cmT := timeOp(func() { mustJoinEstimate(cm.EstimateJoin(k)) })
		t.AddRow(fmt.Sprintf("%d", s),
			fmt.Sprintf("%d", bsT.Nanoseconds()),
			fmt.Sprintf("%d", cmT.Nanoseconds()))
	}
	return t, nil
}

// Fig19 reproduces Figure 19: Virtual-Grid estimation time is (nearly)
// constant in the grid size, because every outer block is visited exactly
// once regardless of the number of cells.
func Fig19(e *Env) (*Table, error) {
	cfg := e.cfg
	outer := e.Tree(cfg.MaxScale).CountTree()
	inner := e.ensureJoinInner().CountTree()
	rng := e.rng(19)
	k := 1 + rng.Intn(cfg.MaxK)
	t := &Table{
		ID:      "fig19",
		Title:   fmt.Sprintf("Virtual-Grid estimation time vs grid size (ns/op, k=%d)", k),
		Columns: []string{"grid", "virtual_grid_ns"},
	}
	for _, g := range []int{4, 8, 12, 16, 20} {
		vg, err := core.BuildVirtualGrid(inner, g, g, cfg.MaxK)
		if err != nil {
			return nil, err
		}
		d := timeOp(func() { mustJoinEstimate(vg.EstimateJoin(outer, k)) })
		t.AddRow(fmt.Sprintf("%dx%d", g, g), fmt.Sprintf("%d", d.Nanoseconds()))
	}
	return t, nil
}

// Fig20 reproduces Figure 20: storage of the join catalogs across a schema
// of JoinSchemaSize indexes, vs scale. Catalog-Merge needs a catalog per
// ordered pair (n(n-1) of them); Virtual-Grid needs one per index.
func Fig20(e *Env) (*Table, error) {
	cfg := e.cfg
	t := &Table{
		ID: "fig20",
		Title: fmt.Sprintf("k-NN-Join catalog storage vs scale (bytes, %d indexes, sample %d, grid %dx%d)",
			cfg.JoinSchemaSize, cfg.SampleSize, cfg.GridSize, cfg.GridSize),
		Columns: []string{"scale", "catalog_merge_B", "virtual_grid_B"},
	}
	for scale := 1; scale <= cfg.MaxScale; scale++ {
		cmBytes, vgBytes, _, _, err := schemaCatalogs(e, scale)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", scale),
			fmt.Sprintf("%d", cmBytes),
			fmt.Sprintf("%d", vgBytes))
	}
	return t, nil
}

// Fig21 reproduces Figure 21: preprocessing time of the join estimators
// across the schema, vs scale. Virtual-Grid is (nearly) constant because
// its work scales with grid cells, not data size; Block-Sample precomputes
// nothing.
func Fig21(e *Env) (*Table, error) {
	cfg := e.cfg
	t := &Table{
		ID: "fig21",
		Title: fmt.Sprintf("k-NN-Join preprocessing time vs scale (seconds, %d indexes)",
			cfg.JoinSchemaSize),
		Columns: []string{"scale", "catalog_merge_s", "virtual_grid_s", "block_sample_s"},
	}
	for scale := 1; scale <= cfg.MaxScale; scale++ {
		_, _, cmTime, vgTime, err := schemaCatalogs(e, scale)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", scale),
			fmt.Sprintf("%.3f", cmTime.Seconds()),
			fmt.Sprintf("%.3f", vgTime.Seconds()),
			"0.000")
	}
	return t, nil
}

// schemaCatalogs builds, for one scale, the full set of Catalog-Merge
// catalogs (every ordered pair) and Virtual-Grid catalogs (every index)
// over the JoinSchemaSize-index schema, returning total storage and build
// time for each technique.
func schemaCatalogs(e *Env, scale int) (cmBytes, vgBytes int, cmTime, vgTime time.Duration, err error) {
	cfg := e.cfg
	trees := e.JoinSchema(scale)
	counts := make([]*index.Tree, len(trees))
	for i, t := range trees {
		counts[i] = t.CountTree()
	}
	start := time.Now()
	for i := range counts {
		for j := range counts {
			if i == j {
				continue
			}
			cm, err := core.BuildCatalogMerge(counts[i], counts[j], cfg.SampleSize, cfg.MaxK)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			cmBytes += cm.StorageBytes()
		}
	}
	cmTime = time.Since(start)
	start = time.Now()
	for _, c := range counts {
		vg, err := core.BuildVirtualGrid(c, cfg.GridSize, cfg.GridSize, cfg.MaxK)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		vgBytes += vg.StorageBytes()
	}
	vgTime = time.Since(start)
	return cmBytes, vgBytes, cmTime, vgTime, nil
}

// Fig22 reproduces Figure 22: join catalog storage vs sample size (a,
// Catalog-Merge) and vs grid size (b, Virtual-Grid), at the full scale.
func Fig22(e *Env) (*Table, *Table, error) {
	cfg := e.cfg
	outer := e.Tree(cfg.MaxScale).CountTree()
	inner := e.ensureJoinInner().CountTree()
	a := &Table{
		ID:      "fig22a",
		Title:   "Catalog-Merge storage vs sample size (bytes, one pair)",
		Columns: []string{"sample_size", "catalog_merge_B"},
	}
	maxSample := numNonEmpty(outer)
	for _, s := range sampleSweep(maxSample) {
		cm, err := core.BuildCatalogMerge(outer, inner, s, cfg.MaxK)
		if err != nil {
			return nil, nil, err
		}
		a.AddRow(fmt.Sprintf("%d", s), fmt.Sprintf("%d", cm.StorageBytes()))
	}
	b := &Table{
		ID:      "fig22b",
		Title:   "Virtual-Grid storage vs grid size (bytes, one index)",
		Columns: []string{"grid", "virtual_grid_B"},
	}
	for _, g := range []int{4, 8, 12, 16, 20} {
		vg, err := core.BuildVirtualGrid(inner, g, g, cfg.MaxK)
		if err != nil {
			return nil, nil, err
		}
		b.AddRow(fmt.Sprintf("%dx%d", g, g), fmt.Sprintf("%d", vg.StorageBytes()))
	}
	return a, b, nil
}

// Fig23 reproduces Figure 23: join preprocessing time vs sample size (a,
// Catalog-Merge) and vs grid size (b, Virtual-Grid), at the full scale.
func Fig23(e *Env) (*Table, *Table, error) {
	cfg := e.cfg
	outer := e.Tree(cfg.MaxScale).CountTree()
	inner := e.ensureJoinInner().CountTree()
	a := &Table{
		ID:      "fig23a",
		Title:   "Catalog-Merge preprocessing time vs sample size (seconds, one pair)",
		Columns: []string{"sample_size", "catalog_merge_s"},
	}
	maxSample := numNonEmpty(outer)
	for _, s := range sampleSweep(maxSample) {
		start := time.Now()
		if _, err := core.BuildCatalogMerge(outer, inner, s, cfg.MaxK); err != nil {
			return nil, nil, err
		}
		a.AddRow(fmt.Sprintf("%d", s), fmt.Sprintf("%.4f", time.Since(start).Seconds()))
	}
	b := &Table{
		ID:      "fig23b",
		Title:   "Virtual-Grid preprocessing time vs grid size (seconds, one index)",
		Columns: []string{"grid", "virtual_grid_s"},
	}
	for _, g := range []int{4, 8, 12, 16, 20} {
		start := time.Now()
		if _, err := core.BuildVirtualGrid(inner, g, g, cfg.MaxK); err != nil {
			return nil, nil, err
		}
		b.AddRow(fmt.Sprintf("%dx%d", g, g), fmt.Sprintf("%.4f", time.Since(start).Seconds()))
	}
	return a, b, nil
}

// sampleSweep returns the sample sizes swept in Figures 15/18/22a/23a,
// clamped to the number of sampleable blocks.
func sampleSweep(maxSample int) []int {
	base := []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	out := make([]int, 0, len(base))
	for _, s := range base {
		if s <= maxSample {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []int{maxSample}
	}
	return out
}

// numNonEmpty counts the outer blocks that contribute join cost.
func numNonEmpty(t *index.Tree) int {
	n := 0
	for _, b := range t.Blocks() {
		if b.Count > 0 {
			n++
		}
	}
	return n
}

// mustJoinEstimate panics on estimator errors inside timing loops, where
// errors indicate harness bugs rather than recoverable conditions.
func mustJoinEstimate(_ float64, err error) {
	if err != nil {
		panic(err)
	}
}
