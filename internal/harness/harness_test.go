package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "b"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("30", "400")
	var text, csv bytes.Buffer
	if err := tab.Fprint(&text); err != nil {
		t.Fatal(err)
	}
	if err := tab.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "demo") {
		t.Error("text output missing title")
	}
	wantCSV := "a,b\n1,2\n30,400\n"
	if csv.String() != wantCSV {
		t.Errorf("CSV = %q, want %q", csv.String(), wantCSV)
	}
}

// parseCell converts a formatted numeric cell.
func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestQuickEnvFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("harness figures are slow")
	}
	e := NewEnv(Quick())
	cfg := e.Config()

	t.Run("fig02_monotone_tendency", func(t *testing.T) {
		tab := Fig02(e)
		if len(tab.Rows) != 11 {
			t.Fatalf("fig2 rows = %d, want 11", len(tab.Rows))
		}
		first := parseCell(t, tab.Rows[0][1])
		last := parseCell(t, tab.Rows[len(tab.Rows)-1][1])
		if last < first {
			t.Errorf("cost at corner (%g) below cost at center (%g)", last, first)
		}
	})

	t.Run("fig04_staircase_shape", func(t *testing.T) {
		tab := Fig04(e)
		if len(tab.Rows) == 0 {
			t.Fatal("fig4 produced no intervals")
		}
		// Intervals must tile [1, MaxK] with non-decreasing costs.
		wantStart := 1.0
		lastCost := 0.0
		for _, row := range tab.Rows {
			if got := parseCell(t, row[0]); got != wantStart {
				t.Fatalf("interval starts at %g, want %g", got, wantStart)
			}
			end := parseCell(t, row[1])
			cost := parseCell(t, row[2])
			if cost < lastCost {
				t.Fatalf("cost decreased to %g after %g", cost, lastCost)
			}
			wantStart = end + 1
			lastCost = cost
		}
		if int(wantStart-1) != cfg.MaxK {
			t.Fatalf("intervals end at %g, want MaxK %d", wantStart-1, cfg.MaxK)
		}
	})

	t.Run("fig07_staircase_shape", func(t *testing.T) {
		tab := Fig07(e)
		if len(tab.Rows) == 0 {
			t.Fatal("fig7 produced no intervals")
		}
		wantStart := 1.0
		for _, row := range tab.Rows {
			if got := parseCell(t, row[0]); got != wantStart {
				t.Fatalf("interval starts at %g, want %g", got, wantStart)
			}
			wantStart = parseCell(t, row[1]) + 1
		}
	})

	t.Run("fig11_accuracy", func(t *testing.T) {
		tab, err := Fig11(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != cfg.MaxScale {
			t.Fatalf("fig11 rows = %d, want %d", len(tab.Rows), cfg.MaxScale)
		}
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if v := parseCell(t, cell); v < 0 || v > 2 {
					t.Errorf("error ratio %g out of sane range", v)
				}
			}
		}
	})

	t.Run("fig12_staircase_faster_and_flat", func(t *testing.T) {
		tab, err := Fig12(e)
		if err != nil {
			t.Fatal(err)
		}
		// At the largest k the staircase must be much faster than the
		// density-based technique.
		last := tab.Rows[len(tab.Rows)-1]
		cc := parseCell(t, last[1])
		density := parseCell(t, last[3])
		if density < 5*cc {
			t.Errorf("density (%g ns) should be much slower than staircase (%g ns) at large k", density, cc)
		}
	})

	t.Run("fig13_fig14_growth", func(t *testing.T) {
		t13, err := Fig13(e)
		if err != nil {
			t.Fatal(err)
		}
		t14, err := Fig14(e)
		if err != nil {
			t.Fatal(err)
		}
		// Storage grows with scale; center-only is smaller than
		// center+corners.
		first := t14.Rows[0]
		last := t14.Rows[len(t14.Rows)-1]
		if parseCell(t, last[1]) <= parseCell(t, first[1]) {
			t.Error("staircase storage should grow with scale")
		}
		for _, row := range t14.Rows {
			if parseCell(t, row[2]) > parseCell(t, row[1]) {
				t.Error("center-only storage should not exceed center+corners")
			}
		}
		if len(t13.Rows) != cfg.MaxScale {
			t.Errorf("fig13 rows = %d", len(t13.Rows))
		}
	})

	t.Run("fig15_fig16_join_accuracy", func(t *testing.T) {
		t15, err := Fig15(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(t15.Rows) == 0 {
			t.Fatal("fig15 empty")
		}
		// Catalog-Merge and Block-Sample errors should be small at the
		// largest sample size.
		last := t15.Rows[len(t15.Rows)-1]
		if v := parseCell(t, last[1]); v > 0.35 {
			t.Errorf("catalog-merge error %g too high at max sample", v)
		}
		t16, err := Fig16(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(t16.Rows) != 5 {
			t.Errorf("fig16 rows = %d, want 5", len(t16.Rows))
		}
	})

	t.Run("fig17_catalog_merge_fastest", func(t *testing.T) {
		tab, err := Fig17(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			cm := parseCell(t, row[1])
			bs := parseCell(t, row[2])
			if bs < cm {
				t.Errorf("k=%s: block-sample (%g ns) should not beat catalog-merge (%g ns)", row[0], bs, cm)
			}
		}
	})

	t.Run("fig18_fig19_timing_shapes", func(t *testing.T) {
		t18, err := Fig18(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(t18.Rows) == 0 {
			t.Fatal("fig18 empty")
		}
		t19, err := Fig19(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(t19.Rows) != 5 {
			t.Errorf("fig19 rows = %d", len(t19.Rows))
		}
	})

	t.Run("fig20_fig21_schema", func(t *testing.T) {
		t20, err := Fig20(e)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range t20.Rows {
			cm := parseCell(t, row[1])
			vg := parseCell(t, row[2])
			// n(n-1) pair catalogs vs n per-index catalogs: CM must
			// dominate VG storage.
			if cm <= vg {
				t.Errorf("scale %s: catalog-merge storage %g not above virtual-grid %g", row[0], cm, vg)
			}
		}
		if _, err := Fig21(e); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("fig22_fig23_sweeps", func(t *testing.T) {
		a, b, err := Fig22(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) == 0 || len(b.Rows) != 5 {
			t.Errorf("fig22 rows: %d, %d", len(a.Rows), len(b.Rows))
		}
		// Virtual-grid storage grows with grid size.
		if parseCell(t, b.Rows[4][1]) <= parseCell(t, b.Rows[0][1]) {
			t.Error("virtual-grid storage should grow with grid size")
		}
		if _, _, err := Fig23(e); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("fig24_summary", func(t *testing.T) {
		tab, err := Fig24(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 6 {
			t.Fatalf("fig24 rows = %d, want 6 techniques", len(tab.Rows))
		}
	})

	t.Run("capacity_sweep", func(t *testing.T) {
		tab, err := CapacitySweep(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 5 {
			t.Fatalf("capacity rows = %d, want 5", len(tab.Rows))
		}
		// Mean actual cost must shrink as capacity grows.
		first := parseCell(t, tab.Rows[0][2])
		last := parseCell(t, tab.Rows[len(tab.Rows)-1][2])
		if last >= first {
			t.Errorf("mean cost should shrink with capacity: %g -> %g", first, last)
		}
	})

	t.Run("ablation", func(t *testing.T) {
		tab, err := Ablation(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 || len(tab.Rows) > 3 {
			t.Fatalf("ablation rows = %d", len(tab.Rows))
		}
		// Quadrant catalogs must cost more storage than merged corners,
		// which must cost more than center-only.
		row := tab.Rows[0]
		corners := parseCell(t, row[6])
		quadrant := parseCell(t, row[7])
		center := parseCell(t, row[8])
		if !(quadrant > corners && corners > center) {
			t.Errorf("storage ordering violated: quadrant %g, corners %g, center %g",
				quadrant, corners, center)
		}
	})
}

func TestRunWritesCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("harness figures are slow")
	}
	e := NewEnv(Quick())
	dir := t.TempDir()
	var out bytes.Buffer
	if err := Run(e, []string{"fig4", "fig10"}, RunOptions{Stdout: &out, OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig04.csv")); err != nil {
		t.Errorf("fig04.csv not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig10.svg")); err != nil {
		t.Errorf("fig10.svg not written: %v", err)
	}
	if !strings.Contains(out.String(), "fig04") {
		t.Error("stdout missing table output")
	}
}

func TestRunUnknownFigure(t *testing.T) {
	e := NewEnv(Quick())
	if err := Run(e, []string{"fig99"}, RunOptions{Stdout: &bytes.Buffer{}}); err == nil {
		t.Error("unknown figure should error")
	}
}
