package harness

import (
	"fmt"
	"io"
	"time"

	"knncost/internal/core"
	"knncost/internal/geom"
	"knncost/internal/knn"
	"knncost/internal/viz"
)

// Fig02 reproduces Figure 2: the k-NN-Select cost grows as the query point
// moves from the center of its block toward a corner. One representative
// block is swept from center to corner at a fixed k.
func Fig02(e *Env) *Table {
	cfg := e.cfg
	tree := e.Tree(cfg.MaxScale)
	rng := e.rng(2)
	// Pick a well-populated block so the sweep stays inside one block.
	blocks := tree.Blocks()
	blk := blocks[0]
	for trial := 0; trial < 200; trial++ {
		cand := blocks[rng.Intn(len(blocks))]
		if cand.Count > blk.Count {
			blk = cand
		}
	}
	center := blk.Bounds.Center()
	corner := blk.Bounds.Corners()[2] // NE corner
	k := cfg.Capacity / 2
	t := &Table{
		ID:      "fig02",
		Title:   fmt.Sprintf("select cost vs query position within a block (k=%d, block with %d points)", k, blk.Count),
		Columns: []string{"2L/diagonal", "actual_cost"},
	}
	const steps = 10
	for s := 0; s <= steps; s++ {
		f := float64(s) / steps
		q := geom.Point{
			X: center.X + f*(corner.X-center.X),
			Y: center.Y + f*(corner.Y-center.Y),
		}
		cost := knn.SelectCost(tree, q, k)
		t.AddRow(fmt.Sprintf("%.1f", f), fmt.Sprintf("%d", cost))
	}
	return t
}

// Fig04 reproduces Figure 4: the staircase of cost against k for one query
// point — the cost is constant over large intervals of k.
func Fig04(e *Env) *Table {
	cfg := e.cfg
	tree := e.Tree(cfg.MaxScale)
	rng := e.rng(4)
	q := e.queryPoints(1, cfg.MaxScale, rng)[0]
	cat := core.BuildSelectCatalog(tree, q, cfg.MaxK)
	t := &Table{
		ID:      "fig04",
		Title:   fmt.Sprintf("stability of select cost over k intervals (query %v, MaxK %d)", q, cfg.MaxK),
		Columns: []string{"k_start", "k_end", "cost"},
	}
	for _, en := range cat.Entries() {
		t.AddRow(fmt.Sprintf("%d", en.StartK), fmt.Sprintf("%d", en.EndK), fmt.Sprintf("%d", en.Cost))
	}
	return t
}

// Fig10 renders the Figure 10 visual: a sample of the OSM-like dataset with
// the region-quadtree decomposition overlaid, as SVG.
func Fig10(e *Env, w io.Writer) error {
	cfg := e.cfg
	scale := (cfg.MaxScale + 1) / 2
	return viz.RenderSVG(w, e.Dataset(scale), e.Tree(scale), viz.Options{
		WidthPx:    1200,
		MaxPoints:  30_000,
		DrawBlocks: true,
	})
}

// selectEstimators returns the three contenders of §5.1 for one scale,
// using the Env caches.
func selectEstimators(e *Env, scale int) (cc, co *core.Staircase, density *core.DensityBased, err error) {
	cc, err = e.Staircase(scale, core.ModeCenterCorners)
	if err != nil {
		return nil, nil, nil, err
	}
	co, err = e.Staircase(scale, core.ModeCenterOnly)
	if err != nil {
		return nil, nil, nil, err
	}
	return cc, co, core.NewDensityBased(e.Tree(scale).CountTree()), nil
}

// Fig11 reproduces Figure 11: average error ratio of k-NN-Select estimation
// vs scale factor, for Staircase Center+Corners, Staircase Center-Only, and
// the density-based baseline.
func Fig11(e *Env) (*Table, error) {
	cfg := e.cfg
	t := &Table{
		ID:      "fig11",
		Title:   fmt.Sprintf("k-NN-Select estimation accuracy (%d queries/scale, k in [1,%d])", cfg.SelectQueries, cfg.MaxK),
		Columns: []string{"scale", "err_staircase_cc", "err_staircase_co", "err_density"},
	}
	for scale := 1; scale <= cfg.MaxScale; scale++ {
		cc, co, density, err := selectEstimators(e, scale)
		if err != nil {
			return nil, err
		}
		tree := e.Tree(scale)
		rng := e.rng(int64(1100 + scale))
		queries := e.queryPoints(cfg.SelectQueries, scale, rng)
		var sumCC, sumCO, sumD float64
		for _, q := range queries {
			k := 1 + rng.Intn(cfg.MaxK)
			actual := float64(knn.SelectCost(tree, q, k))
			if actual == 0 {
				continue
			}
			est, err := cc.EstimateSelect(q, k)
			if err != nil {
				return nil, err
			}
			sumCC += errRatio(est, actual)
			est, err = co.EstimateSelect(q, k)
			if err != nil {
				return nil, err
			}
			sumCO += errRatio(est, actual)
			est, err = density.EstimateSelect(q, k)
			if err != nil {
				return nil, err
			}
			sumD += errRatio(est, actual)
		}
		n := float64(len(queries))
		t.AddRow(fmt.Sprintf("%d", scale),
			fmt.Sprintf("%.3f", sumCC/n),
			fmt.Sprintf("%.3f", sumCO/n),
			fmt.Sprintf("%.3f", sumD/n))
	}
	return t, nil
}

// Fig12 reproduces Figure 12: k-NN-Select estimation time vs k. The
// staircase variants are flat and about two orders of magnitude faster than
// the density-based technique, whose time grows with k.
func Fig12(e *Env) (*Table, error) {
	cfg := e.cfg
	cc, co, density, err := selectEstimators(e, cfg.MaxScale)
	if err != nil {
		return nil, err
	}
	rng := e.rng(12)
	queries := e.queryPoints(64, cfg.MaxScale, rng)
	t := &Table{
		ID:      "fig12",
		Title:   "k-NN-Select estimation time vs k (ns/op)",
		Columns: []string{"k", "staircase_cc_ns", "staircase_co_ns", "density_ns"},
	}
	for k := 1; k <= cfg.MaxK; k *= 4 {
		measure := func(est core.SelectEstimator) time.Duration {
			i := 0
			return timeOp(func() {
				q := queries[i%len(queries)]
				i++
				if _, err := est.EstimateSelect(q, k); err != nil {
					panic(err)
				}
			})
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", measure(cc).Nanoseconds()),
			fmt.Sprintf("%d", measure(co).Nanoseconds()),
			fmt.Sprintf("%d", measure(density).Nanoseconds()))
	}
	return t, nil
}

// Fig13 reproduces Figure 13: preprocessing time of the k-NN-Select
// estimators vs scale factor. The density-based technique precomputes
// nothing.
func Fig13(e *Env) (*Table, error) {
	cfg := e.cfg
	t := &Table{
		ID:      "fig13",
		Title:   "k-NN-Select estimation preprocessing time vs scale (seconds)",
		Columns: []string{"scale", "staircase_cc_s", "staircase_co_s", "density_s"},
	}
	for scale := 1; scale <= cfg.MaxScale; scale++ {
		tree := e.Tree(scale)
		start := time.Now()
		if _, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: cfg.MaxK, Mode: core.ModeCenterCorners}); err != nil {
			return nil, err
		}
		ccTime := time.Since(start)
		start = time.Now()
		if _, err := core.BuildStaircase(tree, core.StaircaseOptions{MaxK: cfg.MaxK, Mode: core.ModeCenterOnly}); err != nil {
			return nil, err
		}
		coTime := time.Since(start)
		t.AddRow(fmt.Sprintf("%d", scale),
			fmt.Sprintf("%.3f", ccTime.Seconds()),
			fmt.Sprintf("%.3f", coTime.Seconds()),
			"0.000")
	}
	return t, nil
}

// Fig14 reproduces Figure 14: storage overhead of the k-NN-Select
// estimators vs scale factor. The density-based technique stores only the
// per-block counts of the Count-Index.
func Fig14(e *Env) (*Table, error) {
	cfg := e.cfg
	t := &Table{
		ID:      "fig14",
		Title:   "k-NN-Select estimation storage vs scale (bytes)",
		Columns: []string{"scale", "staircase_cc_B", "staircase_co_B", "density_B"},
	}
	for scale := 1; scale <= cfg.MaxScale; scale++ {
		cc, co, _, err := selectEstimators(e, scale)
		if err != nil {
			return nil, err
		}
		// The density technique keeps one density value (8 bytes) per
		// Count-Index block.
		densityBytes := 8 * e.Tree(scale).NumBlocks()
		t.AddRow(fmt.Sprintf("%d", scale),
			fmt.Sprintf("%d", cc.StorageBytes()),
			fmt.Sprintf("%d", co.StorageBytes()),
			fmt.Sprintf("%d", densityBytes))
	}
	return t, nil
}
