// Package knncost estimates the cost of spatial k-nearest-neighbor
// operators — how many index blocks a k-NN-Select or k-NN-Join will scan —
// so a spatial query optimizer can choose between query-execution plans
// without touching the data. It implements the techniques of Aly, Aref &
// Ouzzani, "Cost Estimation of Spatial k-Nearest-Neighbor Operators"
// (EDBT 2015), together with the full evaluation substrate: quadtree,
// R-tree and grid indexes, distance-browsing k-NN-Select, locality-based
// k-NN-Join, and an OpenStreetMap-like synthetic data generator.
//
// # Quickstart
//
//	pts := knncost.GenerateOSMLike(100_000, 42)
//	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 512})
//
//	// Evaluate a query and measure its true cost.
//	neighbors, stats := ix.SelectKNNStats(knncost.Point{X: 2.5, Y: 48.8}, 10)
//
//	// Build the staircase estimator once, then predict costs in O(1).
//	est, _ := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{})
//	predicted, _ := est.EstimateSelect(knncost.Point{X: 2.5, Y: 48.8}, 10)
//
// Estimator predictions and Stats.BlocksScanned are in the same unit —
// blocks — so predicted and observed costs compare directly; the examples/
// directory shows cost-based plan selection end to end.
package knncost

import (
	"sync"

	"knncost/internal/engine"
	"knncost/internal/geom"
	"knncost/internal/grid"
	"knncost/internal/index"
	"knncost/internal/kdtree"
	"knncost/internal/knn"
	"knncost/internal/quadtree"
	"knncost/internal/rangeop"
	"knncost/internal/rtree"
)

// Point is a location in the two-dimensional Euclidean plane.
type Point = geom.Point

// Rect is a closed axis-aligned rectangle.
type Rect = geom.Rect

// NewRect returns the rectangle spanning the two corner coordinates given
// in any order.
func NewRect(x0, y0, x1, y1 float64) Rect { return geom.NewRect(x0, y0, x1, y1) }

// BoundsOf returns the smallest rectangle containing all pts.
func BoundsOf(pts []Point) Rect { return geom.BoundsOf(pts) }

// IndexOptions configure index construction.
type IndexOptions struct {
	// Capacity is the maximum number of points per leaf block. Zero means
	// 512 — the paper uses 10,000 at its 0.1B-point scale; keep the
	// points-per-block ratio comparable for your dataset size.
	Capacity int
	// Bounds fixes the indexed region for space-partitioning indexes.
	// The zero Rect means "bounding box of the input points". Ignored by
	// the R-tree.
	Bounds Rect
	// Fanout is the internal-node fanout of the R-tree. Zero means 16.
	// Ignored by other index kinds.
	Fanout int
}

// Index is a spatial index over a set of points together with its
// Count-Index (the auxiliary block-count structure the paper's estimators
// read). Build one with BuildQuadtreeIndex, BuildRTreeIndex or
// BuildGridIndex.
type Index struct {
	tree  *index.Tree
	count *index.Tree

	// eng is the lazily created engine relation behind SelectEstimatorFor
	// and JoinEstimatorFor; it caches each technique's artifact once per
	// Index (see technique.go).
	engOnce sync.Once
	eng     *engine.Relation
}

// BuildQuadtreeIndex builds a region-quadtree index — the paper's testbed
// index — over pts. It panics if a point lies outside explicitly given
// bounds.
func BuildQuadtreeIndex(pts []Point, opt IndexOptions) *Index {
	capacity := opt.Capacity
	if capacity == 0 {
		capacity = quadtree.DefaultCapacity
	}
	t := quadtree.Build(pts, quadtree.Options{Capacity: capacity, Bounds: opt.Bounds}).Index()
	return wrapIndex(t)
}

// BuildRTreeIndex bulk-loads an STR R-tree index over pts.
func BuildRTreeIndex(pts []Point, opt IndexOptions) (*Index, error) {
	t, err := rtree.Build(pts, rtree.Options{LeafCapacity: opt.Capacity, Fanout: opt.Fanout})
	if err != nil {
		return nil, err
	}
	return wrapIndex(t.Index()), nil
}

// BuildGridIndex builds a uniform nx × ny grid index over pts. A zero
// bounds Rect means "bounding box of the input points".
func BuildGridIndex(pts []Point, nx, ny int, bounds Rect) *Index {
	return wrapIndex(grid.Build(pts, bounds, nx, ny).Index())
}

// BuildKDTreeIndex builds a region kd-tree index — a space-partitioning
// alternative to the quadtree that bisects one axis per level. It panics
// if a point lies outside explicitly given bounds.
func BuildKDTreeIndex(pts []Point, opt IndexOptions) *Index {
	capacity := opt.Capacity
	if capacity == 0 {
		capacity = kdtree.DefaultCapacity
	}
	t := kdtree.Build(pts, kdtree.Options{Capacity: capacity, Bounds: opt.Bounds}).Index()
	return wrapIndex(t)
}

func wrapIndex(t *index.Tree) *Index {
	return &Index{tree: t, count: t.CountTree()}
}

// NumPoints returns the number of indexed points.
func (ix *Index) NumPoints() int { return ix.tree.NumPoints() }

// NumBlocks returns the number of leaf blocks — the denominator of every
// cost in this library.
func (ix *Index) NumBlocks() int { return ix.tree.NumBlocks() }

// Bounds returns the indexed region.
func (ix *Index) Bounds() Rect { return ix.tree.Bounds() }

// Neighbor is one k-NN-Select result: a point and its distance from the
// query point.
type Neighbor = knn.Neighbor

// SelectStats reports the work a k-NN-Select performed; BlocksScanned is
// the cost the estimators predict.
type SelectStats = knn.Stats

// SelectKNN returns the k points nearest to q using distance browsing
// (optimal in blocks scanned). Fewer than k results are returned when the
// index holds fewer than k points.
func (ix *Index) SelectKNN(q Point, k int) []Neighbor {
	out, _ := knn.Select(ix.tree, q, k)
	return out
}

// SelectKNNStats is SelectKNN plus the work statistics.
func (ix *Index) SelectKNNStats(q Point, k int) ([]Neighbor, SelectStats) {
	return knn.Select(ix.tree, q, k)
}

// SelectKNNCost returns only the true block-scan cost of a k-NN-Select —
// useful for validating estimates.
func (ix *Index) SelectKNNCost(q Point, k int) int {
	return knn.SelectCost(ix.tree, q, k)
}

// Browser streams the neighbors of a query point in ascending distance
// order without fixing k in advance — the incremental interface that makes
// "k nearest matching some predicate" plans possible.
type Browser = knn.Browser

// Browse starts an incremental nearest-neighbor traversal from q.
func (ix *Index) Browse(q Point) *Browser {
	return knn.NewBrowser(ix.tree, q)
}

// RangeSelect returns the indexed points inside r (boundary inclusive) and
// the number of blocks scanned.
func (ix *Index) RangeSelect(r Rect) ([]Point, int) {
	return rangeop.Select(ix.tree, r)
}

// RangeCost returns the exact block-scan cost of RangeSelect(r), computed
// from the Count-Index without touching data.
func (ix *Index) RangeCost(r Rect) int {
	return rangeop.Cost(ix.count, r)
}

// RangeSelectivity estimates the fraction of the indexed points inside r
// under the per-block uniformity assumption.
func (ix *Index) RangeSelectivity(r Rect) float64 {
	return rangeop.Selectivity(ix.count, r)
}
