// Benchmarks regenerating the measured quantity of every figure in the
// paper's evaluation section (§5). Each BenchmarkFigNN measures the
// operation the figure plots (estimation time, preprocessing time) or
// reports the figure's metric (error ratio, storage bytes) via
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the shape of
// the entire evaluation. The full tables — including scale sweeps — come
// from `go run ./cmd/knnbench -fig all`.
package knncost_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"knncost"
	"knncost/internal/core"
	"knncost/internal/datagen"
	"knncost/internal/geom"
	"knncost/internal/index"
	"knncost/internal/quadtree"
)

// benchFixture holds the shared workload: two OSM-like datasets with their
// quadtree indexes and prebuilt estimators, built once for all benchmarks.
type benchFixture struct {
	pts     []knncost.Point
	queries []knncost.Point
	outer   *knncost.Index // 50k points
	inner   *knncost.Index // 100k points
	cc      *knncost.StaircaseEstimator
	co      *knncost.StaircaseEstimator
	density *knncost.DensityEstimator
	cm      *knncost.CatalogMergeEstimator
	bs      *knncost.BlockSampleEstimator
	vg      *knncost.VirtualGridEstimator
}

const (
	benchMaxK     = 500
	benchSample   = 200
	benchGridSize = 10
)

var (
	fixtureOnce sync.Once
	fixture     *benchFixture
)

func getFixture(b *testing.B) *benchFixture {
	b.Helper()
	fixtureOnce.Do(func() {
		f := &benchFixture{}
		f.pts = knncost.GenerateOSMLike(100_000, 1)
		f.inner = knncost.BuildQuadtreeIndex(f.pts, knncost.IndexOptions{Capacity: 256})
		f.outer = knncost.BuildQuadtreeIndex(
			knncost.GenerateOSMLike(50_000, 2), knncost.IndexOptions{Capacity: 256})

		rng := rand.New(rand.NewSource(3))
		b := knncost.WorldBounds()
		f.queries = make([]knncost.Point, 512)
		for i := range f.queries {
			if i%2 == 0 {
				f.queries[i] = knncost.Point{
					X: b.Min.X + rng.Float64()*b.Width(),
					Y: b.Min.Y + rng.Float64()*b.Height(),
				}
			} else {
				f.queries[i] = f.pts[rng.Intn(len(f.pts))]
			}
		}

		var err error
		f.cc, err = knncost.NewStaircaseEstimator(f.inner, knncost.StaircaseOptions{
			MaxK: benchMaxK, Mode: knncost.ModeCenterCorners})
		must(err)
		f.co, err = knncost.NewStaircaseEstimator(f.inner, knncost.StaircaseOptions{
			MaxK: benchMaxK, Mode: knncost.ModeCenterOnly})
		must(err)
		f.density = knncost.NewDensityEstimator(f.inner)
		f.cm, err = knncost.NewCatalogMergeEstimator(f.outer, f.inner, benchSample, benchMaxK)
		must(err)
		f.bs = knncost.NewBlockSampleEstimator(f.outer, f.inner, benchSample)
		f.vg, err = knncost.NewVirtualGridEstimator(f.inner, benchGridSize, benchGridSize, benchMaxK)
		must(err)
		fixture = f
	})
	return fixture
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// --- Figure 2: cost grows with the query's offset from the block center ---

func BenchmarkFig02CostVsPosition(b *testing.B) {
	f := getFixture(b)
	q := f.queries[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.inner.SelectKNNCost(q, 64)
	}
}

// internalTree builds an internal index.Tree for the Procedure 1/2
// benchmarks, which exercise internal/core directly.
var (
	internalOnce  sync.Once
	internalIx    *index.Tree
	internalCount *index.Tree
	internalQs    []geom.Point
)

func getInternalTree() (*index.Tree, *index.Tree, []geom.Point) {
	internalOnce.Do(func() {
		pts := datagen.OSMLike(50_000, 5)
		internalIx = quadtree.Build(pts, quadtree.Options{
			Capacity: 256, Bounds: datagen.WorldBounds,
		}).Index()
		internalCount = internalIx.CountTree()
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 64; i++ {
			internalQs = append(internalQs, pts[rng.Intn(len(pts))])
		}
	})
	return internalIx, internalCount, internalQs
}

// --- Figure 4: Procedure 1 builds the select staircase catalog ---

func BenchmarkFig04SelectCatalogBuild(b *testing.B) {
	ix, _, qs := getInternalTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildSelectCatalog(ix, qs[i%len(qs)], benchMaxK)
	}
}

// --- Figure 7: Procedure 2 builds the locality staircase catalog ---

func BenchmarkFig07LocalityCatalogBuild(b *testing.B) {
	_, count, _ := getInternalTree()
	blocks := core.SampleBlocks(count, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildLocalityCatalog(count, blocks[i%len(blocks)].Bounds, benchMaxK)
	}
}

// --- Figure 11: select estimation accuracy ---

func BenchmarkFig11SelectAccuracy(b *testing.B) {
	f := getFixture(b)
	rng := rand.New(rand.NewSource(11))
	var sumCC, sumCO, sumD float64
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		k := 1 + rng.Intn(benchMaxK)
		actual := float64(f.inner.SelectKNNCost(q, k))
		if actual == 0 {
			continue
		}
		cc, err := f.cc.EstimateSelect(q, k)
		if err != nil {
			b.Fatal(err)
		}
		co, err := f.co.EstimateSelect(q, k)
		if err != nil {
			b.Fatal(err)
		}
		d, err := f.density.EstimateSelect(q, k)
		if err != nil {
			b.Fatal(err)
		}
		sumCC += math.Abs(cc-actual) / actual
		sumCO += math.Abs(co-actual) / actual
		sumD += math.Abs(d-actual) / actual
		n++
	}
	if n > 0 {
		b.ReportMetric(sumCC/float64(n), "errCC/op")
		b.ReportMetric(sumCO/float64(n), "errCO/op")
		b.ReportMetric(sumD/float64(n), "errDensity/op")
	}
}

// --- Figure 12: select estimation time vs k ---

func benchSelectTime(b *testing.B, est knncost.SelectEstimator, k int) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateSelect(f.queries[i%len(f.queries)], k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12SelectTimeStaircaseCC(b *testing.B) {
	for _, k := range []int{1, 16, 256} {
		b.Run(kName(k), func(b *testing.B) { benchSelectTime(b, getFixture(b).cc, k) })
	}
}

func BenchmarkFig12SelectTimeStaircaseCO(b *testing.B) {
	for _, k := range []int{1, 16, 256} {
		b.Run(kName(k), func(b *testing.B) { benchSelectTime(b, getFixture(b).co, k) })
	}
}

func BenchmarkFig12SelectTimeDensity(b *testing.B) {
	for _, k := range []int{1, 16, 256} {
		b.Run(kName(k), func(b *testing.B) { benchSelectTime(b, getFixture(b).density, k) })
	}
}

func kName(k int) string {
	switch {
	case k < 10:
		return "k=00" + string(rune('0'+k))
	case k < 100:
		return "k=0" + itoa(k)
	default:
		return "k=" + itoa(k)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Hot paths: the perf-critical operations pinned by this package ---

// BenchmarkEstimateSelectHot measures the steady-state catalog path: flat-grid
// point location plus two closure-free binary searches. It must report
// 0 allocs/op — TestEstimateSelectZeroAlloc in internal/core enforces the
// same bound as a hard failure.
func BenchmarkEstimateSelectHot(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.cc.EstimateSelect(f.queries[i%len(f.queries)], 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaircaseBuildAlloc tracks the allocation cost of building the
// center+corners staircase; the pooled browser/scratch-catalog path keeps
// allocs/op to retained catalog data only.
func BenchmarkStaircaseBuildAlloc(b *testing.B) {
	pts := knncost.GenerateOSMLike(20_000, 4)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{
			MaxK: 200, Mode: knncost.ModeCenterCorners}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateSelectBatch measures the batched entry point at a few
// worker counts over the shared 512-query workload.
func BenchmarkEstimateSelectBatch(b *testing.B) {
	f := getFixture(b)
	queries := make([]knncost.SelectQuery, len(f.queries))
	for i, q := range f.queries {
		queries[i] = knncost.SelectQuery{Point: q, K: 1 + i%benchMaxK}
	}
	for _, par := range []int{1, 4, 0} {
		name := "p=" + itoa(par)
		if par == 0 {
			name = "p=max"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results := f.cc.EstimateSelectBatch(queries, par)
				for j := range results {
					if results[j].Err != nil {
						b.Fatal(results[j].Err)
					}
				}
			}
		})
	}
}

// --- Figure 13: staircase preprocessing time ---

func BenchmarkFig13SelectPreprocessCC(b *testing.B) {
	pts := knncost.GenerateOSMLike(20_000, 4)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 256})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{
			MaxK: 200, Mode: knncost.ModeCenterCorners}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13SelectPreprocessCO(b *testing.B) {
	pts := knncost.GenerateOSMLike(20_000, 4)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 256})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{
			MaxK: 200, Mode: knncost.ModeCenterOnly}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 14: staircase storage ---

func BenchmarkFig14SelectStorage(b *testing.B) {
	f := getFixture(b)
	var bytesCC, bytesCO int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bytesCC = f.cc.StorageBytes()
		bytesCO = f.co.StorageBytes()
	}
	b.ReportMetric(float64(bytesCC), "bytesCC")
	b.ReportMetric(float64(bytesCO), "bytesCO")
}

// --- Figure 15: join estimation accuracy (Catalog-Merge, Block-Sample) ---

func BenchmarkFig15JoinAccuracy(b *testing.B) {
	f := getFixture(b)
	rng := rand.New(rand.NewSource(15))
	k := 1 + rng.Intn(benchMaxK)
	actual := float64(knncost.JoinKNNCost(f.outer, f.inner, k))
	var cmEst, bsEst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cmEst, err = f.cm.EstimateJoin(k)
		if err != nil {
			b.Fatal(err)
		}
		bsEst, err = f.bs.EstimateJoin(k)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(math.Abs(cmEst-actual)/actual, "errCM")
	b.ReportMetric(math.Abs(bsEst-actual)/actual, "errBS")
}

// --- Figure 16: Virtual-Grid accuracy ---

func BenchmarkFig16VGridAccuracy(b *testing.B) {
	f := getFixture(b)
	rng := rand.New(rand.NewSource(16))
	k := 1 + rng.Intn(benchMaxK)
	actual := float64(knncost.JoinKNNCost(f.outer, f.inner, k))
	var est float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		est, err = f.vg.EstimateJoin(f.outer, k)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(math.Abs(est-actual)/actual, "errVG")
}

// --- Figure 17: join estimation time vs k ---

func BenchmarkFig17JoinTimeCatalogMerge(b *testing.B) {
	f := getFixture(b)
	for _, k := range []int{1, 16, 256} {
		b.Run(kName(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.cm.EstimateJoin(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig17JoinTimeBlockSample(b *testing.B) {
	f := getFixture(b)
	for _, k := range []int{1, 16, 256} {
		b.Run(kName(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.bs.EstimateJoin(k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig17JoinTimeVirtualGrid(b *testing.B) {
	f := getFixture(b)
	for _, k := range []int{1, 16, 256} {
		b.Run(kName(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.vg.EstimateJoin(f.outer, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 18: join estimation time vs sample size ---

func BenchmarkFig18JoinTimeVsSampleBlockSample(b *testing.B) {
	f := getFixture(b)
	for _, s := range []int{100, 300, 500} {
		bs := knncost.NewBlockSampleEstimator(f.outer, f.inner, s)
		b.Run("s="+itoa(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bs.EstimateJoin(64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig18JoinTimeVsSampleCatalogMerge(b *testing.B) {
	f := getFixture(b)
	for _, s := range []int{100, 300, 500} {
		cm, err := knncost.NewCatalogMergeEstimator(f.outer, f.inner, s, benchMaxK)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("s="+itoa(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cm.EstimateJoin(64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 19: Virtual-Grid estimation time vs grid size ---

func BenchmarkFig19VGridTime(b *testing.B) {
	f := getFixture(b)
	for _, g := range []int{4, 12, 20} {
		vg, err := knncost.NewVirtualGridEstimator(f.inner, g, g, benchMaxK)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("g="+itoa(g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vg.EstimateJoin(f.outer, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 20: join catalog storage across a schema ---

func BenchmarkFig20JoinStorage(b *testing.B) {
	f := getFixture(b)
	var cmBytes, vgBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmBytes = f.cm.StorageBytes()
		vgBytes = f.vg.StorageBytes()
	}
	b.ReportMetric(float64(cmBytes), "bytesCM_pair")
	b.ReportMetric(float64(vgBytes), "bytesVG_index")
}

// --- Figure 21: join preprocessing time ---

func BenchmarkFig21JoinPreprocessCatalogMerge(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knncost.NewCatalogMergeEstimator(f.outer, f.inner, benchSample, benchMaxK); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21JoinPreprocessVirtualGrid(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knncost.NewVirtualGridEstimator(f.inner, benchGridSize, benchGridSize, benchMaxK); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 22: storage vs sample size / grid size ---

func BenchmarkFig22JoinStorageVsSample(b *testing.B) {
	f := getFixture(b)
	for _, s := range []int{100, 300, 500} {
		cm, err := knncost.NewCatalogMergeEstimator(f.outer, f.inner, s, benchMaxK)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("s="+itoa(s), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				bytes = cm.StorageBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

func BenchmarkFig22JoinStorageVsGrid(b *testing.B) {
	f := getFixture(b)
	for _, g := range []int{4, 12, 20} {
		vg, err := knncost.NewVirtualGridEstimator(f.inner, g, g, benchMaxK)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("g="+itoa(g), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				bytes = vg.StorageBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

// --- Figure 23: preprocessing time vs sample size / grid size ---

func BenchmarkFig23JoinPreprocessVsSample(b *testing.B) {
	f := getFixture(b)
	for _, s := range []int{100, 300, 500} {
		b.Run("s="+itoa(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := knncost.NewCatalogMergeEstimator(f.outer, f.inner, s, benchMaxK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig23JoinPreprocessVsGrid(b *testing.B) {
	f := getFixture(b)
	for _, g := range []int{4, 12, 20} {
		b.Run("g="+itoa(g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := knncost.NewVirtualGridEstimator(f.inner, g, g, benchMaxK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 24 has no single measured quantity; BenchmarkFig24 runs the
// ground-truth operators the summary compares. ---

func BenchmarkFig24GroundTruthSelect(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.inner.SelectKNNCost(f.queries[i%len(f.queries)], 64)
	}
}

func BenchmarkFig24GroundTruthJoinCost(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knncost.JoinKNNCost(f.outer, f.inner, 16)
	}
}
