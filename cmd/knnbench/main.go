// Command knnbench regenerates the figures of the paper's evaluation
// section (§5) against the synthetic OSM-like workload.
//
// Usage:
//
//	knnbench -fig all                     # every figure, default config
//	knnbench -fig fig11,fig12 -out results/
//	knnbench -fig fig20 -quick            # smoke-test sizes
//	knnbench -fig fig11 -points 100000 -scales 10 -capacity 512 -maxk 2000
//	knnbench -perf -out results/          # hot-path microbenchmarks to
//	                                      # results/BENCH_<date>.json
//
// Each figure prints an aligned table (and, with -out, a CSV per table;
// fig10 writes an SVG). See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"knncost/internal/harness"
)

func main() {
	var (
		figs     = flag.String("fig", "all", "comma-separated experiment ids ("+strings.Join(harness.FigureIDs(), ", ")+") or 'all'")
		outDir   = flag.String("out", "", "directory for CSV/SVG outputs (optional)")
		quick    = flag.Bool("quick", false, "use small smoke-test sizes")
		seed     = flag.Int64("seed", 1, "random seed")
		points   = flag.Int("points", 0, "points per scale factor (0 = default)")
		scales   = flag.Int("scales", 0, "number of scale factors (0 = default)")
		capacity = flag.Int("capacity", 0, "quadtree block capacity (0 = default)")
		maxK     = flag.Int("maxk", 0, "largest catalog-maintained k (0 = default)")
		queries  = flag.Int("queries", 0, "queries per accuracy experiment (0 = default)")
		sample   = flag.Int("sample", 0, "fixed sample size for join catalogs (0 = default)")
		gridSize = flag.Int("grid", 0, "fixed virtual-grid dimension (0 = default)")
		perf     = flag.Bool("perf", false, "run hot-path microbenchmarks and write BENCH_<date>.json (op, ns/op, allocs/op, bytes/op)")
	)
	flag.Parse()

	if *perf {
		results, err := harness.RunPerf(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knnbench:", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-32s %14.1f ns/op %8d allocs/op %12d B/op\n",
				r.Op, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
		path, err := harness.WritePerfJSON(*outDir, results)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knnbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
		return
	}

	cfg := harness.Config{}
	if *quick {
		cfg = harness.Quick()
	}
	cfg.Seed = *seed
	if *points > 0 {
		cfg.PointsPerScale = *points
	}
	if *scales > 0 {
		cfg.MaxScale = *scales
	}
	if *capacity > 0 {
		cfg.Capacity = *capacity
	}
	if *maxK > 0 {
		cfg.MaxK = *maxK
	}
	if *queries > 0 {
		cfg.SelectQueries = *queries
	}
	if *sample > 0 {
		cfg.SampleSize = *sample
	}
	if *gridSize > 0 {
		cfg.GridSize = *gridSize
	}

	env := harness.NewEnv(cfg)
	ids := strings.Split(*figs, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := harness.Run(env, ids, harness.RunOptions{OutDir: *outDir}); err != nil {
		fmt.Fprintln(os.Stderr, "knnbench:", err)
		os.Exit(1)
	}
}
