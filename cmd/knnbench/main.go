// Command knnbench regenerates the figures of the paper's evaluation
// section (§5) against the synthetic OSM-like workload.
//
// Usage:
//
//	knnbench -fig all                     # every figure, default config
//	knnbench -fig fig11,fig12 -out results/
//	knnbench -fig fig20 -quick            # smoke-test sizes
//	knnbench -fig fig11 -points 100000 -scales 10 -capacity 512 -maxk 2000
//	knnbench -perf -out results/          # hot-path microbenchmarks to
//	                                      # results/BENCH_<date>.json
//	knnbench -accuracy -out results/ -baseline results/ACCURACY_BASELINE.json
//	                                      # estimator-accuracy audit +
//	                                      # regression gate (exit 1 on fail)
//	knnbench -accuracy -baseline results/ACCURACY_BASELINE.json -update-baseline
//	                                      # refresh the golden baseline
//	knnbench -accuracy -techniques staircase-cc,virtual-grid
//	                                      # audit only the named techniques
//	                                      # (registry names or aliases; not
//	                                      # combinable with -baseline)
//
// Each figure prints an aligned table (and, with -out, a CSV per table;
// fig10 writes an SVG). See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"knncost/internal/harness"
)

func main() {
	var (
		figs     = flag.String("fig", "all", "comma-separated experiment ids ("+strings.Join(harness.FigureIDs(), ", ")+") or 'all'")
		outDir   = flag.String("out", "", "directory for CSV/SVG outputs (optional)")
		quick    = flag.Bool("quick", false, "use small smoke-test sizes")
		seed     = flag.Int64("seed", 1, "random seed")
		points   = flag.Int("points", 0, "points per scale factor (0 = default)")
		scales   = flag.Int("scales", 0, "number of scale factors (0 = default)")
		capacity = flag.Int("capacity", 0, "quadtree block capacity (0 = default)")
		maxK     = flag.Int("maxk", 0, "largest catalog-maintained k (0 = default)")
		queries  = flag.Int("queries", 0, "queries per accuracy experiment (0 = default)")
		sample   = flag.Int("sample", 0, "fixed sample size for join catalogs (0 = default)")
		gridSize = flag.Int("grid", 0, "fixed virtual-grid dimension (0 = default)")
		perf     = flag.Bool("perf", false, "run hot-path microbenchmarks and write BENCH_<date>.json (op, ns/op, allocs/op, bytes/op)")
		shards   = flag.String("shards", "", "with -perf: also measure routed batch throughput at these comma-separated shard counts (e.g. 1,2,4)")
		against  = flag.String("against", "", "with -perf: gate this run against a committed BENCH_<date>.json (exit 1 beyond -perf-tol)")
		perfTol  = flag.Float64("perf-tol", 1.20, "multiplicative ns/op tolerance vs -against")
		accuracy = flag.Bool("accuracy", false, "audit estimator accuracy against the brute-force oracle and write ACCURACY_<date>.json")
		baseline = flag.String("baseline", "", "golden AccuracyReport to gate against (with -accuracy)")
		tol      = flag.Float64("tol", 1.10, "multiplicative q-error tolerance vs the baseline (with -accuracy)")
		update   = flag.Bool("update-baseline", false, "rewrite -baseline with this run's report instead of gating")
		techs    = flag.String("techniques", "", "comma-separated technique names or aliases restricting -accuracy (default all; incompatible with -baseline)")
	)
	flag.Parse()

	if *accuracy {
		if err := runAccuracyGate(*seed, *outDir, *baseline, *tol, *update, splitTechniques(*techs)); err != nil {
			fmt.Fprintln(os.Stderr, "knnbench:", err)
			os.Exit(1)
		}
		return
	}

	if *perf {
		if err := runPerf(*seed, *outDir, *shards, *against, *perfTol); err != nil {
			fmt.Fprintln(os.Stderr, "knnbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := harness.Config{}
	if *quick {
		cfg = harness.Quick()
	}
	cfg.Seed = *seed
	if *points > 0 {
		cfg.PointsPerScale = *points
	}
	if *scales > 0 {
		cfg.MaxScale = *scales
	}
	if *capacity > 0 {
		cfg.Capacity = *capacity
	}
	if *maxK > 0 {
		cfg.MaxK = *maxK
	}
	if *queries > 0 {
		cfg.SelectQueries = *queries
	}
	if *sample > 0 {
		cfg.SampleSize = *sample
	}
	if *gridSize > 0 {
		cfg.GridSize = *gridSize
	}

	env := harness.NewEnv(cfg)
	ids := strings.Split(*figs, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := harness.Run(env, ids, harness.RunOptions{OutDir: *outDir}); err != nil {
		fmt.Fprintln(os.Stderr, "knnbench:", err)
		os.Exit(1)
	}
}

// runPerf measures the hot-path microbenchmarks (plus, with -shards, the
// routed multi-shard batch throughput), writes BENCH_<date>.json, and — with
// -against — gates the fresh numbers against a committed BENCH file so a
// perf regression fails loudly instead of landing silently.
func runPerf(seed int64, outDir, shardList, against string, tol float64) error {
	results, err := harness.RunPerf(seed)
	if err != nil {
		return err
	}
	if shardList != "" {
		counts, err := parseShardCounts(shardList)
		if err != nil {
			return err
		}
		shardResults, err := harness.RunShardPerf(seed, counts)
		if err != nil {
			return err
		}
		results = append(results, shardResults...)
	}
	for _, r := range results {
		fmt.Printf("%-36s %14.1f ns/op %8d allocs/op %12d B/op\n",
			r.Op, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	path, err := harness.WritePerfJSON(outDir, results)
	if err != nil {
		return err
	}
	fmt.Println("wrote", path)
	if against == "" {
		return nil
	}
	base, err := harness.LoadPerfJSON(against)
	if err != nil {
		return fmt.Errorf("loading perf baseline: %w", err)
	}
	failures := harness.ComparePerf(results, base, tol)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "FAIL:", f)
	}
	if len(failures) > 0 {
		return fmt.Errorf("perf gate: %d regressions vs %s (tol %.2f)", len(failures), against, tol)
	}
	fmt.Printf("perf gate: PASS vs %s (tol %.2f)\n", against, tol)
	return nil
}

func parseShardCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-shards given but empty")
	}
	return counts, nil
}

// splitTechniques parses the -techniques flag value into trimmed, non-empty
// names; validation happens in the harness via the engine registry.
func splitTechniques(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// runAccuracyGate runs the estimator-accuracy audit and, when a baseline is
// given, gates the report against it: any broken exact-equality invariant
// or any q-error quantile beyond baseline*tol fails the run. With
// -update-baseline the report replaces the golden file instead.
func runAccuracyGate(seed int64, outDir, baselinePath string, tol float64, update bool, techniques []string) error {
	if len(techniques) > 0 && baselinePath != "" {
		return fmt.Errorf("-techniques cannot be combined with -baseline: the gate requires every baseline technique in the report")
	}
	rep, err := harness.RunAccuracy(harness.AccuracyConfig{Seed: seed, Techniques: techniques})
	if err != nil {
		return err
	}
	if outDir != "" {
		path, err := harness.WriteAccuracyJSON(outDir, rep)
		if err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if baselinePath == "" {
		fmt.Print(harness.FormatAccuracyTable(rep, rep, tol))
		if len(rep.Violations) > 0 {
			return fmt.Errorf("accuracy audit: %d invariant violations (first: %s)",
				len(rep.Violations), rep.Violations[0])
		}
		return nil
	}
	if update {
		if err := harness.WriteAccuracyBaseline(baselinePath, rep); err != nil {
			return err
		}
		fmt.Println("updated baseline", baselinePath)
		fmt.Print(harness.FormatAccuracyTable(rep, rep, tol))
		if len(rep.Violations) > 0 {
			return fmt.Errorf("accuracy audit: %d invariant violations (first: %s)",
				len(rep.Violations), rep.Violations[0])
		}
		return nil
	}
	base, err := harness.LoadAccuracyBaseline(baselinePath)
	if err != nil {
		return fmt.Errorf("accuracy gate needs a baseline (run with -update-baseline to create one): %w", err)
	}
	fmt.Print(harness.FormatAccuracyTable(rep, base, tol))
	failures := harness.CompareAccuracy(rep, base, tol)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "FAIL:", f)
	}
	if len(failures) > 0 {
		return fmt.Errorf("accuracy gate: %d failures vs %s", len(failures), baselinePath)
	}
	fmt.Println("accuracy gate: PASS")
	return nil
}
