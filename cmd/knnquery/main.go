// Command knnquery runs individual k-NN operators against a synthetic
// dataset and prints estimated vs actual block-scan costs — a hands-on way
// to see each estimation technique's behaviour on a single query.
//
// Usage:
//
//	knnquery -op select -x 12.5 -y 41.9 -k 25
//	knnquery -op join -k 5 -outer 50000 -n 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"knncost"
)

func main() {
	var (
		op       = flag.String("op", "select", "operator: select or join")
		n        = flag.Int("n", 200_000, "inner/dataset size")
		outerN   = flag.Int("outer", 50_000, "outer relation size (join only)")
		seed     = flag.Int64("seed", 1, "dataset seed")
		capacity = flag.Int("capacity", 256, "index block capacity")
		x        = flag.Float64("x", 0, "query longitude (select only)")
		y        = flag.Float64("y", 0, "query latitude (select only)")
		k        = flag.Int("k", 10, "number of neighbors")
		maxK     = flag.Int("maxk", 1000, "largest catalog-maintained k")
	)
	flag.Parse()

	switch *op {
	case "select":
		runSelect(*n, *seed, *capacity, *x, *y, *k, *maxK)
	case "join":
		runJoin(*n, *outerN, *seed, *capacity, *k, *maxK)
	default:
		fmt.Fprintf(os.Stderr, "knnquery: unknown -op %q (want select or join)\n", *op)
		os.Exit(1)
	}
}

func runSelect(n int, seed int64, capacity int, x, y float64, k, maxK int) {
	pts := knncost.GenerateOSMLike(n, seed)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: capacity})
	q := knncost.Point{X: x, Y: y}
	fmt.Printf("dataset: %d points, %d blocks (capacity %d)\n", n, ix.NumBlocks(), capacity)
	fmt.Printf("k-NN-Select at %v, k=%d\n\n", q, k)

	start := time.Now()
	neighbors, stats := ix.SelectKNNStats(q, k)
	execTime := time.Since(start)
	fmt.Printf("actual: %d blocks scanned, %d neighbors, %.4f max distance (%v)\n",
		stats.BlocksScanned, len(neighbors), maxDist(neighbors), execTime)

	start = time.Now()
	stair, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: maxK})
	if err != nil {
		fatal(err)
	}
	buildTime := time.Since(start)
	est, err := stair.EstimateSelect(q, k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("staircase estimate:     %8.2f blocks (catalogs: %s, %d B)\n",
		est, buildTime.Round(time.Millisecond), stair.StorageBytes())

	est, err = knncost.NewDensityEstimator(ix).EstimateSelect(q, k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("density-based estimate: %8.2f blocks (no preprocessing)\n", est)
}

func runJoin(n, outerN int, seed int64, capacity, k, maxK int) {
	inner := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(n, seed), knncost.IndexOptions{Capacity: capacity})
	outer := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(outerN, seed+1), knncost.IndexOptions{Capacity: capacity})
	fmt.Printf("outer: %d points / %d blocks, inner: %d points / %d blocks\n",
		outerN, outer.NumBlocks(), n, inner.NumBlocks())
	fmt.Printf("k-NN-Join, k=%d\n\n", k)

	actual := knncost.JoinKNNCost(outer, inner, k)
	fmt.Printf("actual locality-based cost: %d blocks\n", actual)

	bs := knncost.NewBlockSampleEstimator(outer, inner, 200)
	est, err := bs.EstimateJoin(k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("block-sample estimate (s=200):  %10.0f blocks\n", est)

	cm, err := knncost.NewCatalogMergeEstimator(outer, inner, 200, maxK)
	if err != nil {
		fatal(err)
	}
	est, err = cm.EstimateJoin(k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("catalog-merge estimate (s=200): %10.0f blocks (%d B catalog)\n", est, cm.StorageBytes())

	vg, err := knncost.NewVirtualGridEstimator(inner, 10, 10, maxK)
	if err != nil {
		fatal(err)
	}
	est, err = vg.EstimateJoin(outer, k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("virtual-grid estimate (10x10):  %10.0f blocks (%d B catalogs)\n", est, vg.StorageBytes())
}

func maxDist(ns []knncost.Neighbor) float64 {
	if len(ns) == 0 {
		return 0
	}
	return ns[len(ns)-1].Dist
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knnquery:", err)
	os.Exit(1)
}
