// Command knnquery runs individual k-NN operators against a synthetic
// dataset and prints estimated vs actual block-scan costs — a hands-on way
// to see each estimation technique's behaviour on a single query.
//
// Usage:
//
//	knnquery -op select -x 12.5 -y 41.9 -k 25
//	knnquery -op select -x 12.5 -y 41.9 -k 25 -technique staircase-c
//	knnquery -op join -k 5 -outer 50000 -n 200000 -technique virtual-grid
//	knnquery -op select -batch queries.txt -parallel 8
//	knnquery -technique list
//
// In batch mode each line of the -batch file (or stdin when the path is
// "-") holds one query as "x y k" (k optional, defaulting to -k); all
// queries are estimated through the parallel batch API in one call.
//
// Plan mode prices a conjunctive multi-predicate query through the
// cost-based optimizer and prints the EXPLAIN text — every enumerated plan
// in ascending cost order, the chosen one starred:
//
//	knnquery -op plan -x 12.5 -y 41.9 -k 25 -k2 50
//	knnquery -op plan -x 12.5 -y 41.9 -k 25 -k2 50 -selectivity 0.5
//	knnquery -op plan -join -x 12.5 -y 41.9 -k 25 -k2 5
//
// Two relations are generated: "outer" (-outer points) and "inner" (-n
// points). Without -join the query is two kNN-Selects, one per relation at
// (-x, -y) with k=-k and k=-k2; with -join it is a kNN-Select on "outer"
// (k=-k) plus a kNN-Join outer⋉inner (k=-k2). -selectivity models an extra
// non-spatial filter on the driving predicate.
//
// -technique names one registered estimation technique (canonical name or
// alias; "list" prints the registry) and estimates with it alone, using the
// default catalog options; without it, select mode compares the default
// staircase against the density baseline and join mode compares the three
// locality-join techniques plus the bounds-only aknn-bounds estimator
// against its own AkNN ground truth, honouring -maxk.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"knncost"
	"knncost/internal/optimizer"
	"knncost/internal/store"
)

func main() {
	var (
		op        = flag.String("op", "select", "operator: select or join")
		n         = flag.Int("n", 200_000, "inner/dataset size")
		outerN    = flag.Int("outer", 50_000, "outer relation size (join only)")
		seed      = flag.Int64("seed", 1, "dataset seed")
		capacity  = flag.Int("capacity", 256, "index block capacity")
		x         = flag.Float64("x", 0, "query longitude (select only)")
		y         = flag.Float64("y", 0, "query latitude (select only)")
		k         = flag.Int("k", 10, "number of neighbors")
		maxK      = flag.Int("maxk", 1000, "largest catalog-maintained k")
		batch     = flag.String("batch", "", `file of "x y [k]" lines ("-" = stdin): batch select estimates`)
		parallel  = flag.Int("parallel", 0, "batch worker count (0 = GOMAXPROCS)")
		technique = flag.String("technique", "", `registered technique name or alias ("list" prints the registry)`)

		k2          = flag.Int("k2", 10, "second predicate's k (plan mode)")
		selectivity = flag.Float64("selectivity", 0, "non-spatial filter selectivity in (0,1]; 0 = none (plan mode)")
		planJoin    = flag.Bool("join", false, "plan a select + kNN-Join query instead of two selects (plan mode)")
	)
	flag.Parse()

	if *technique == "list" {
		listTechniques(os.Stdout)
		return
	}
	switch *op {
	case "select":
		if *batch != "" {
			runSelectBatch(*n, *seed, *capacity, *batch, *k, *maxK, *parallel, *technique)
			return
		}
		runSelect(*n, *seed, *capacity, *x, *y, *k, *maxK, *technique)
	case "join":
		runJoin(*n, *outerN, *seed, *capacity, *k, *maxK, *technique)
	case "plan":
		runPlan(*n, *outerN, *seed, *capacity, *maxK, *x, *y, *k, *k2, *selectivity, *planJoin, *technique)
	default:
		fmt.Fprintf(os.Stderr, "knnquery: unknown -op %q (want select, join or plan)\n", *op)
		os.Exit(1)
	}
}

// listTechniques prints the technique registry, the single source every
// consumer of this repository resolves names from. Names and alias lists
// arrive sorted from the registry, so the output is deterministic.
func listTechniques(w io.Writer) {
	fmt.Fprintln(w, "k-NN-Select techniques:")
	for _, ti := range knncost.SelectTechniques() {
		printTechnique(w, ti)
	}
	fmt.Fprintln(w, "\nk-NN-Join techniques:")
	for _, ti := range knncost.JoinTechniques() {
		printTechnique(w, ti)
	}
}

func printTechnique(w io.Writer, ti knncost.TechniqueInfo) {
	aliases := ""
	if len(ti.Aliases) > 0 {
		aliases = fmt.Sprintf(" (aliases: %s)", strings.Join(ti.Aliases, ", "))
	}
	fmt.Fprintf(w, "  %-14s %s%s\n", ti.Name, ti.Summary, aliases)
}

// readQueries parses one query per line: "x y" or "x y k". Blank lines and
// lines starting with '#' are skipped.
func readQueries(r io.Reader, defaultK int) ([]knncost.SelectQuery, error) {
	var queries []knncost.SelectQuery
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("line %d: want \"x y [k]\", got %q", line, text)
		}
		qx, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: x: %w", line, err)
		}
		qy, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: y: %w", line, err)
		}
		qk := defaultK
		if len(fields) == 3 {
			qk, err = strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: k: %w", line, err)
			}
		}
		queries = append(queries, knncost.SelectQuery{
			Point: knncost.Point{X: qx, Y: qy}, K: qk,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return queries, nil
}

func runSelectBatch(n int, seed int64, capacity int, path string, defaultK, maxK, parallel int, technique string) {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	queries, err := readQueries(in, defaultK)
	if err != nil {
		fatal(err)
	}
	pts := knncost.GenerateOSMLike(n, seed)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: capacity})
	start := time.Now()
	var est knncost.SelectEstimator
	if technique != "" {
		var err error
		if est, err = ix.SelectEstimatorFor(technique); err != nil {
			fatal(err)
		}
	} else {
		stair, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: maxK})
		if err != nil {
			fatal(err)
		}
		est = stair
	}
	buildTime := time.Since(start)
	fmt.Printf("dataset: %d points, %d blocks (capacity %d); catalogs built in %s\n",
		n, ix.NumBlocks(), capacity, buildTime.Round(time.Millisecond))

	start = time.Now()
	results := knncost.EstimateSelectBatch(est, queries, parallel)
	took := time.Since(start)
	failed := 0
	for i, res := range results {
		q := queries[i]
		if res.Err != nil {
			fmt.Printf("%12.6f %12.6f k=%-5d error: %v\n", q.Point.X, q.Point.Y, q.K, res.Err)
			failed++
			continue
		}
		fmt.Printf("%12.6f %12.6f k=%-5d %10.2f blocks\n", q.Point.X, q.Point.Y, q.K, res.Blocks)
	}
	perQuery := time.Duration(0)
	if len(queries) > 0 {
		perQuery = took / time.Duration(len(queries))
	}
	fmt.Printf("\n%d queries (%d failed) in %s (%s/query)\n",
		len(queries), failed, took, perQuery)
}

func runSelect(n int, seed int64, capacity int, x, y float64, k, maxK int, technique string) {
	pts := knncost.GenerateOSMLike(n, seed)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: capacity})
	q := knncost.Point{X: x, Y: y}
	fmt.Printf("dataset: %d points, %d blocks (capacity %d)\n", n, ix.NumBlocks(), capacity)
	fmt.Printf("k-NN-Select at %v, k=%d\n\n", q, k)

	start := time.Now()
	neighbors, stats := ix.SelectKNNStats(q, k)
	execTime := time.Since(start)
	fmt.Printf("actual: %d blocks scanned, %d neighbors, %.4f max distance (%v)\n",
		stats.BlocksScanned, len(neighbors), maxDist(neighbors), execTime)

	if technique != "" {
		start = time.Now()
		est, err := ix.SelectEstimatorFor(technique)
		if err != nil {
			fatal(err)
		}
		buildTime := time.Since(start)
		blocks, err := est.EstimateSelect(q, k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s estimate: %8.2f blocks (catalogs: %s)\n",
			technique, blocks, buildTime.Round(time.Millisecond))
		return
	}

	start = time.Now()
	stair, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: maxK})
	if err != nil {
		fatal(err)
	}
	buildTime := time.Since(start)
	est, err := stair.EstimateSelect(q, k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("staircase estimate:     %8.2f blocks (catalogs: %s, %d B)\n",
		est, buildTime.Round(time.Millisecond), stair.StorageBytes())

	est, err = knncost.NewDensityEstimator(ix).EstimateSelect(q, k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("density-based estimate: %8.2f blocks (no preprocessing)\n", est)
}

func runJoin(n, outerN int, seed int64, capacity, k, maxK int, technique string) {
	inner := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(n, seed), knncost.IndexOptions{Capacity: capacity})
	outer := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(outerN, seed+1), knncost.IndexOptions{Capacity: capacity})
	fmt.Printf("outer: %d points / %d blocks, inner: %d points / %d blocks\n",
		outerN, outer.NumBlocks(), n, inner.NumBlocks())
	fmt.Printf("k-NN-Join, k=%d\n\n", k)

	actual := knncost.JoinKNNCost(outer, inner, k)
	fmt.Printf("actual locality-based cost: %d blocks\n", actual)

	if technique != "" {
		est, err := outer.JoinEstimatorFor(technique, inner)
		if err != nil {
			fatal(err)
		}
		blocks, err := est.EstimateJoin(k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s estimate: %10.0f blocks\n", technique, blocks)
		return
	}

	bs := knncost.NewBlockSampleEstimator(outer, inner, 200)
	est, err := bs.EstimateJoin(k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("block-sample estimate (s=200):  %10.0f blocks\n", est)

	cm, err := knncost.NewCatalogMergeEstimator(outer, inner, 200, maxK)
	if err != nil {
		fatal(err)
	}
	est, err = cm.EstimateJoin(k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("catalog-merge estimate (s=200): %10.0f blocks (%d B catalog)\n", est, cm.StorageBytes())

	vg, err := knncost.NewVirtualGridEstimator(inner, 10, 10, maxK)
	if err != nil {
		fatal(err)
	}
	est, err = vg.EstimateJoin(outer, k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("virtual-grid estimate (10x10):  %10.0f blocks (%d B catalogs)\n", est, vg.StorageBytes())

	// The bounds-only AkNN join is a different evaluation strategy with a
	// different cost unit (candidate points, not blocks); its estimator is
	// compared against its own ground truth, not the locality cost above.
	aknnActual := knncost.JoinAkNNCost(outer, inner, k)
	fmt.Printf("\nactual bounds-only AkNN cost:   %10d points\n", aknnActual)
	est, err = knncost.NewAknnBoundsEstimator(outer, inner, 200).EstimateJoin(k)
	if err != nil {
		fatal(err)
	}
	sum := knncost.NewAknnSummary(inner)
	fmt.Printf("aknn-bounds estimate (s=200):   %10.0f points (%d B summary)\n", est, sum.StorageBytes())
}

// runPlan builds two relations in an in-process store and prices a
// conjunctive query through the optimizer, printing the EXPLAIN text.
func runPlan(n, outerN int, seed int64, capacity, maxK int, x, y float64, k, k2 int, selectivity float64, withJoin bool, technique string) {
	st, err := store.New(store.Options{MaxK: maxK, IndexCapacity: capacity})
	if err != nil {
		fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st.Close(ctx)
	}()
	start := time.Now()
	if _, err := st.Register("outer", knncost.GenerateOSMLike(outerN, seed+1)); err != nil {
		fatal(err)
	}
	if _, err := st.Register("inner", knncost.GenerateOSMLike(n, seed)); err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := st.WaitReady(ctx); err != nil {
		fatal(err)
	}
	fmt.Printf("outer: %d points, inner: %d points; catalogs built in %s\n",
		outerN, n, time.Since(start).Round(time.Millisecond))

	pt := knncost.Point{X: x, Y: y}
	q := optimizer.Query{
		Selects:     []optimizer.SelectPredicate{{Relation: "outer", Query: pt, K: k, Technique: technique}},
		Selectivity: selectivity,
	}
	if withJoin {
		q.Join = &optimizer.JoinPredicate{Outer: "outer", Inner: "inner", K: k2}
		fmt.Printf("planning: select outer(k=%d) + join outer⋉inner(k=%d)\n\n", k, k2)
	} else {
		q.Selects = append(q.Selects, optimizer.SelectPredicate{
			Relation: "inner", Query: pt, K: k2, Technique: technique,
		})
		fmt.Printf("planning: select outer(k=%d) + select inner(k=%d)\n\n", k, k2)
	}
	start = time.Now()
	dec, err := optimizer.PlanOnce(st.View(), q)
	if err != nil {
		fatal(err)
	}
	fmt.Print(dec.Explain())
	fmt.Printf("\nplanned %d alternatives in %s\n", len(dec.Alternatives), time.Since(start).Round(time.Microsecond))
}

func maxDist(ns []knncost.Neighbor) float64 {
	if len(ns) == 0 {
		return 0
	}
	return ns[len(ns)-1].Dist
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knnquery:", err)
	os.Exit(1)
}
