package main

import (
	"regexp"
	"sort"
	"strings"
	"testing"

	knncost "knncost"
)

// TestListTechniquesDeterministic pins `knnquery -technique list` output:
// canonical names sorted within each section, every alias list sorted, and
// two renders byte-identical — the listing must not depend on registration
// or map-iteration order.
func TestListTechniquesDeterministic(t *testing.T) {
	var a, b strings.Builder
	listTechniques(&a)
	listTechniques(&b)
	if a.String() != b.String() {
		t.Fatalf("two renders differ:\n%s\n---\n%s", a.String(), b.String())
	}

	out := a.String()
	for _, ti := range append(knncost.SelectTechniques(), knncost.JoinTechniques()...) {
		if !strings.Contains(out, ti.Name) {
			t.Errorf("listing is missing technique %s", ti.Name)
		}
		if !sort.StringsAreSorted(ti.Aliases) {
			t.Errorf("aliases of %s not sorted: %v", ti.Name, ti.Aliases)
		}
	}

	// The printed alias lists match the sorted registry order exactly.
	aliasRe := regexp.MustCompile(`\(aliases: ([^)]+)\)`)
	for _, m := range aliasRe.FindAllStringSubmatch(out, -1) {
		printed := strings.Split(m[1], ", ")
		if !sort.StringsAreSorted(printed) {
			t.Errorf("printed alias list not sorted: %v", printed)
		}
	}
}
