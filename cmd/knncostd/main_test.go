package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs the daemon in-process on a random port and returns its
// base URL plus a channel carrying the eventual exit code.
func startDaemon(t *testing.T, extraArgs ...string) (string, chan int) {
	t.Helper()
	pr, pw := io.Pipe()
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-relations", "hotels:800,restaurants:1200",
		"-capacity", "64", "-maxk", "50", "-sample", "30", "-grid", "4",
		"-access-log=false",
	}, extraArgs...)
	exit := make(chan int, 1)
	go func() {
		exit <- run(args, pw)
		pw.Close()
	}()
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	go io.Copy(io.Discard, pr)
	addr := strings.TrimSpace(strings.TrimPrefix(line, "knncostd listening on "))
	if addr == line {
		t.Fatalf("unexpected startup line %q", line)
	}
	return "http://" + addr, exit
}

func getStatus(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: non-JSON body: %v", url, err)
	}
	return resp.StatusCode, body
}

func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _ := getStatus(t, base+"/readyz")
		if code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not become ready within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Liveness is immediate, readiness flips from "starting" to "ready" once
// catalogs are built, and the service then answers estimates.
func TestStartupReadiness(t *testing.T) {
	base, exit := startDaemon(t)
	// /healthz answers from the first moment, whatever /readyz says.
	if code, body := getStatus(t, base+"/healthz"); code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, body)
	}
	waitReady(t, base)
	code, body := getStatus(t, base+"/estimate/select?rel=hotels&x=10&y=45&k=5")
	if code != http.StatusOK {
		t.Fatalf("estimate after ready: %d %v", code, body)
	}
	if _, ok := body["blocks"].(float64); !ok {
		t.Fatalf("estimate response missing blocks: %v", body)
	}
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	if code := <-exit; code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}
}

// stallReader serves its payload normally until stallAfter bytes, then
// sleeps once before delivering the rest — pinning the HTTP request
// in flight for a deterministic window.
type stallReader struct {
	r          io.Reader
	read       int
	stallAfter int
	delay      time.Duration
	stalled    bool
	inFlight   chan<- struct{}
}

func (s *stallReader) Read(p []byte) (int, error) {
	if !s.stalled && s.read >= s.stallAfter {
		s.stalled = true
		s.inFlight <- struct{}{}
		time.Sleep(s.delay)
	}
	n, err := s.r.Read(p)
	s.read += n
	return n, err
}

// SIGTERM with requests in flight drains them — every in-flight request
// completes with 200 — and the daemon exits 0 within the drain timeout.
func TestGracefulDrainUnderLoad(t *testing.T) {
	base, exit := startDaemon(t, "-drain-timeout", "15s")
	waitReady(t, base)

	queries := bytes.Buffer{}
	queries.WriteString(`{"relation":"restaurants","parallelism":1,"queries":[`)
	for i := 0; i < 500; i++ {
		if i > 0 {
			queries.WriteByte(',')
		}
		fmt.Fprintf(&queries, `{"x":%d,"y":45,"k":20}`, -30+i%60)
	}
	queries.WriteString(`]}`)

	// Each client stalls mid-body for 600 ms, so when the signal lands
	// ~all clients are provably in flight on the server.
	const clients = 8
	var wg sync.WaitGroup
	codes := make([]int, clients)
	inFlight := make(chan struct{}, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := &stallReader{
				r:          bytes.NewReader(queries.Bytes()),
				stallAfter: queries.Len() / 2,
				delay:      600 * time.Millisecond,
				inFlight:   inFlight,
			}
			resp, err := http.Post(base+"/estimate/select/batch", "application/json", body)
			if err != nil {
				codes[c] = -1
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			codes[c] = resp.StatusCode
		}(c)
	}
	// Every client is mid-request-body — in flight on the server — when
	// the plug is pulled.
	for c := 0; c < clients; c++ {
		<-inFlight
	}
	syscall.Kill(os.Getpid(), syscall.SIGTERM)

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	wg.Wait()
	for c, code := range codes {
		if code != http.StatusOK {
			t.Errorf("in-flight client %d finished with %d, want 200 (drain must complete started work)", c, code)
		}
	}
}

func TestParseRelations(t *testing.T) {
	specs, err := parseRelations(" a:10 , b:20 ")
	if err != nil || len(specs) != 2 || specs[0].name != "a" || specs[1].n != 20 {
		t.Fatalf("specs=%v err=%v", specs, err)
	}
	// Empty and the explicit "none" mean no preloaded relations — a shard
	// daemon starts empty and is populated through the router.
	for _, none := range []string{"", "none"} {
		specs, err := parseRelations(none)
		if err != nil || specs != nil {
			t.Errorf("parseRelations(%q) = %v, %v; want nil, nil", none, specs, err)
		}
	}
	for _, bad := range []string{"a", "a:", "a:0", "a:-5", "a:x"} {
		if _, err := parseRelations(bad); err == nil {
			t.Errorf("parseRelations(%q) accepted", bad)
		}
	}
}

func TestBadFlagsExitCode(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}, io.Discard); code != 2 {
		t.Fatalf("bad flag exit code %d, want 2", code)
	}
	if code := run([]string{"-relations", "nonsense"}, io.Discard); code != 2 {
		t.Fatalf("bad relations exit code %d, want 2", code)
	}
}
