// Command knncostd serves k-NN cost estimates over HTTP: a schema of
// synthetic relations is registered at startup and every catalog built in
// the background, then estimates are answered from memory in microseconds —
// the usage profile the paper motivates for location-based services.
//
// Usage:
//
//	knncostd -addr :8080 -relations hotels:50000,restaurants:200000
//
// The daemon also scales out (see internal/shard): started with -shard-id it
// serves one shard of a topology (its slice of a shared -cache-dir stays
// private via a per-shard registry scope), and started with -router -peers it
// serves no data at all — just the stateless scatter-gather router exposing
// the identical public HTTP surface over the shard set, with replica fan-out
// and hedged requests:
//
//	knncostd -shard-id a -addr :8081 -relations none -cache-dir /var/knn
//	knncostd -shard-id b -addr :8082 -relations none -cache-dir /var/knn
//	knncostd -router -addr :8080 -peers a=http://localhost:8081,b=http://localhost:8082
//
//	curl 'localhost:8080/relations'
//	curl 'localhost:8080/estimate/select?rel=restaurants&x=10&y=45&k=25'
//	curl 'localhost:8080/estimate/join?outer=hotels&inner=restaurants&k=5'
//	curl 'localhost:8080/cost/select?rel=restaurants&x=10&y=45&k=25'
//	curl -X POST localhost:8080/relations -d '{"name":"bars","points":[[1,2],[3,4]]}'
//	curl -X POST localhost:8080/relations/bars/points -d '{"points":[[5,6]]}'
//	curl -X DELETE localhost:8080/relations/bars/points -d '{"points":[[1,2]]}'
//	curl -X DELETE localhost:8080/relations/bars
//
// With -cache-dir set, point mutations are crash-safe: each is appended to a
// write-ahead log and fsynced before the HTTP response returns (group
// commit; see -wal-sync-interval for the relaxed mode), folded into fresh
// catalogs by background compaction (-compact-threshold, -compact-interval),
// and replayed from the log on restart if the daemon dies first. The
// knncost_wal_* expvars report appends, fsyncs, replays and torn tails.
//
// The schema is dynamic: relations live in an internal/store relation store
// whose immutable views hot-swap atomically under traffic, so registrations,
// rebuilds and drops never pause estimate requests. With -cache-dir set, the
// store persists every built catalog keyed by a fingerprint of the data, and
// a restarted daemon warm-loads its whole schema — including relations
// registered at runtime — without rebuilding a single catalog (the
// knncost_catalog_builds expvar stays 0; /debug/vars exposes it).
//
// The daemon is hardened for production traffic:
//
//   - The listener binds immediately; /healthz (liveness) answers 200 from
//     the first moment, /readyz answers 503 "starting" until every boot
//     relation's catalogs are ready, 200 "ready" after, and 503 "draining"
//     during shutdown. Estimates for relations still building answer 503
//     with Retry-After rather than 400.
//   - Every route except the probes is wrapped in the middleware stack of
//     internal/service/middleware: request IDs, access logging, panic
//     recovery (JSON 500, process survives), per-route deadlines (stricter
//     for the expensive ground-truth /cost/* routes, separate budget for
//     the /relations admin routes), and load shedding with 503 +
//     Retry-After beyond -max-in-flight plus -queue.
//   - SIGINT/SIGTERM trigger a graceful drain: the ready gate flips to
//     draining, in-flight requests get up to -drain-timeout to finish, the
//     store's build pool drains (in-flight catalog builds get the same
//     grace before cancellation), and the process exits 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"knncost/internal/datagen"
	"knncost/internal/optimizer"
	"knncost/internal/service"
	"knncost/internal/service/middleware"
	"knncost/internal/shard"
	"knncost/internal/store"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

// storeVars bridges the current store's counters into expvar. Tests run
// several daemons in one process, so the expvar names are published once and
// read through an atomic pointer to whichever store is current.
var (
	varsOnce  sync.Once
	varsStore atomic.Pointer[store.Store]
)

func publishStoreVars(st *store.Store) {
	varsStore.Store(st)
	varsOnce.Do(func() {
		counter := func(read func(*store.Store) int64) expvar.Func {
			return func() any {
				if s := varsStore.Load(); s != nil {
					return read(s)
				}
				return int64(0)
			}
		}
		expvar.Publish("knncost_catalog_builds", counter((*store.Store).CatalogBuilds))
		expvar.Publish("knncost_cache_hits", counter((*store.Store).CacheHits))
		expvar.Publish("knncost_relations", counter(func(s *store.Store) int64 {
			return int64(s.View().NumRelations())
		}))
		expvar.Publish("knncost_wal_appends", counter((*store.Store).WALAppends))
		expvar.Publish("knncost_wal_fsyncs", counter((*store.Store).WALFsyncs))
		expvar.Publish("knncost_wal_replayed", counter((*store.Store).WALReplayed))
		expvar.Publish("knncost_wal_truncated_tails", counter((*store.Store).WALTruncatedTails))
		expvar.Publish("knncost_compactions", counter((*store.Store).Compactions))
		expvar.Publish("knncost_tuner_passes", counter((*store.Store).TunerPasses))
		expvar.Publish("knncost_tuner_shrinks", counter((*store.Store).TunerShrinks))
		expvar.Publish("knncost_tuner_grows", counter((*store.Store).TunerGrows))
		expvar.Publish("knncost_tuner_reverts", counter((*store.Store).TunerReverts))
		expvar.Publish("knncost_tuner_blocked", counter((*store.Store).TunerBlocked))
		expvar.Publish("knncost_tuner_total_bytes", counter((*store.Store).ArtifactBytes))
		expvar.Publish("knncost_tuner_budget_bytes", counter((*store.Store).TunerBudgetBytes))
	})
}

// plannerVars bridges the service's plan-cache counters into expvar, with
// the same once-plus-atomic-pointer shape as storeVars.
var (
	plannerVarsOnce sync.Once
	varsPlanner     atomic.Pointer[optimizer.Planner]
)

func publishPlannerVars(p *optimizer.Planner) {
	varsPlanner.Store(p)
	plannerVarsOnce.Do(func() {
		counter := func(read func(*optimizer.Planner) int64) expvar.Func {
			return func() any {
				if p := varsPlanner.Load(); p != nil {
					return read(p)
				}
				return int64(0)
			}
		}
		expvar.Publish("knncost_plan_cache_hits", counter((*optimizer.Planner).Hits))
		expvar.Publish("knncost_plan_cache_misses", counter((*optimizer.Planner).Misses))
		expvar.Publish("knncost_plan_cache_evictions", counter((*optimizer.Planner).Evictions))
		expvar.Publish("knncost_plan_cache_invalidations", counter((*optimizer.Planner).Invalidations))
	})
}

// run is main with injectable args and stdout, so tests (and the soak
// script via the printed listen address) can drive a full daemon lifecycle
// including the signal-triggered drain. It returns the process exit code.
func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("knncostd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address (use :0 for a random port)")
		relations = fs.String("relations", "hotels:50000,restaurants:200000",
			"comma-separated name:numpoints pairs")
		capacity = fs.Int("capacity", 256, "index block capacity")
		maxK     = fs.Int("maxk", 1000, "largest catalog-maintained k")
		sample   = fs.Int("sample", 200, "catalog-merge sample size")
		gridSize = fs.Int("grid", 10, "virtual-grid dimension")
		seed     = fs.Int64("seed", 1, "dataset seed base")
		cacheDir = fs.String("cache-dir", "",
			"catalog cache directory for warm restarts (empty disables)")
		dataDir = fs.String("data-dir", "",
			"directory for server-side point files usable in POST /relations (empty disables)")
		buildWorkers = fs.Int("build-workers", 0,
			"catalog build worker pool size (0 means GOMAXPROCS)")
		compactThreshold = fs.Int("compact-threshold", 0,
			"pending delta points that trigger a background compaction (0 means 512)")
		compactInterval = fs.Duration("compact-interval", 0,
			"staleness bound: pending deltas older than this are compacted (0 means 2s, negative disables)")
		walSyncInterval = fs.Duration("wal-sync-interval", 0,
			"WAL group-fsync interval; 0 fsyncs on every mutation before it is acknowledged")
		walSegmentBytes = fs.Int("wal-segment-bytes", 0,
			"WAL segment rotation size in bytes (0 means the built-in default)")
		planCache = fs.Int("plan-cache", 0,
			"plan cache capacity in entries (0 means the built-in default)")
		catalogBudget = fs.Int64("catalog-budget-bytes", 0,
			"global artifact byte budget enforced by the space auto-tuner (0 disables tuning)")
		tunerInterval = fs.Duration("tuner-interval", 0,
			"auto-tuner pass interval (0 means 5s, negative disables the background loop)")
		tunerTolerance = fs.Float64("tuner-qerror-tolerance", 0,
			"worst select q-error a coarsened relation may show before the tuner reverts it (0 means 2.0)")

		estimateDeadline = fs.Duration("deadline-estimate", 5*time.Second,
			"per-request deadline for /estimate/* and metadata routes (0 disables)")
		costDeadline = fs.Duration("deadline-cost", 2*time.Second,
			"per-request deadline for the expensive ground-truth /cost/* routes (0 disables)")
		adminDeadline = fs.Duration("deadline-admin", 10*time.Second,
			"per-request deadline for the /relations admin routes (0 falls back to -deadline-estimate)")
		maxInFlight = fs.Int("max-in-flight", 256, "max concurrently served requests (0 disables shedding)")
		queueLen    = fs.Int("queue", 128, "admission-queue length beyond max-in-flight")
		retryAfter  = fs.Duration("retry-after", time.Second, "Retry-After on shed 503s")
		drain       = fs.Duration("drain-timeout", 10*time.Second,
			"grace period for in-flight requests and catalog builds on SIGINT/SIGTERM")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
		idleTimeout  = fs.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout")
		accessLog    = fs.Bool("access-log", true, "log one structured line per request")

		shardID = fs.String("shard-id", "",
			"serve as one shard of a topology: scopes the cache registry so shards can share -cache-dir")
		routerMode = fs.Bool("router", false,
			"serve as the stateless shard router instead of a relation store (requires -peers)")
		peers = fs.String("peers", "",
			"router peers, comma-separated id=url (or bare url; the host:port becomes the id)")
		replicas = fs.Int("replicas", 2,
			"router replica fan-out: every relation is owned by this many shards (clamped to the shard count)")
		hedgeAfter = fs.Duration("hedge-after", 20*time.Millisecond,
			"router hedge delay floor; the adaptive delay is the observed -hedge-percentile of the primary (0 disables hedging)")
		hedgePercentile = fs.Float64("hedge-percentile", 0.95,
			"latency percentile of the primary replica used as the adaptive hedge delay")
		attemptTimeout = fs.Duration("attempt-timeout", 0,
			"router per-replica attempt bound before failing over (0 disables)")
		breakerFailures = fs.Int("breaker-failures", 0,
			"consecutive transport failures that trip a replica's health breaker (0 means 3, negative disables)")
		breakerBackoff = fs.Duration("breaker-backoff", 0,
			"initial backoff between health probes of a tripped replica (0 means 250ms)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *routerMode {
		return runRouter(routerConfig{
			addr: *addr, peers: *peers, replicas: *replicas,
			hedgeAfter: *hedgeAfter, hedgePercentile: *hedgePercentile,
			attemptTimeout: *attemptTimeout, breakerFailures: *breakerFailures,
			breakerBackoff:   *breakerBackoff,
			estimateDeadline: *estimateDeadline, costDeadline: *costDeadline,
			adminDeadline: *adminDeadline, maxInFlight: *maxInFlight,
			queueLen: *queueLen, retryAfter: *retryAfter, drain: *drain,
			readTimeout: *readTimeout, writeTimeout: *writeTimeout,
			idleTimeout: *idleTimeout, accessLog: *accessLog,
		}, stdout)
	}
	if *peers != "" {
		log.Printf("knncostd: -peers requires -router")
		return 2
	}

	specs, err := parseRelations(*relations)
	if err != nil {
		log.Printf("knncostd: %v", err)
		return 2
	}

	// Bind before building catalogs so orchestrators see liveness (and a
	// truthful "starting" readiness) immediately; catalog construction
	// for production-sized relations takes seconds.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("knncostd: listen: %v", err)
		return 1
	}
	fmt.Fprintf(stdout, "knncostd listening on %s\n", ln.Addr())

	st, err := store.New(store.Options{
		MaxK:             *maxK,
		SampleSize:       *sample,
		GridSize:         *gridSize,
		IndexCapacity:    *capacity,
		Bounds:           datagen.WorldBounds,
		Workers:          *buildWorkers,
		CacheDir:         *cacheDir,
		RegistryScope:    *shardID,
		CompactThreshold: *compactThreshold,
		CompactInterval:  *compactInterval,
		WALSyncInterval:  *walSyncInterval,
		WALSegmentBytes:  *walSegmentBytes,

		CatalogBudgetBytes:   *catalogBudget,
		TunerInterval:        *tunerInterval,
		TunerQErrorTolerance: *tunerTolerance,
	})
	if err != nil {
		log.Printf("knncostd: %v", err)
		ln.Close()
		return 1
	}
	publishStoreVars(st)
	closeStore := func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := st.Close(ctx); err != nil {
			log.Printf("knncostd: store drain: %v", err)
		}
	}

	srv := service.NewWithStore(st, service.Options{
		MaxK:             *maxK,
		SampleSize:       *sample,
		GridSize:         *gridSize,
		DataDir:          *dataDir,
		PlanCacheEntries: *planCache,
	})
	publishPlannerVars(srv.Planner())
	wrapped, _ := middleware.Wrap(srv, middleware.Config{
		EstimateDeadline: *estimateDeadline,
		CostDeadline:     *costDeadline,
		AdminDeadline:    *adminDeadline,
		MaxInFlight:      *maxInFlight,
		QueueLen:         *queueLen,
		RetryAfter:       *retryAfter,
		AccessLog:        *accessLog,
	})

	var gate middleware.Ready
	rootMux := http.NewServeMux()
	rootMux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	rootMux.Handle("GET /readyz", gate.Handler())
	rootMux.Handle("GET /debug/vars", expvar.Handler())
	rootMux.Handle("/", wrapped)

	httpSrv := &http.Server{
		Handler:           rootMux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Register the boot schema and flip the ready gate once it is built.
	// The data is deterministic in (name, n, seed), so across restarts the
	// fingerprints match and a warm cache satisfies every build. Cached
	// relations registered at runtime were restored by store.New already.
	buildFailed := make(chan struct{})
	go func() {
		start := time.Now()
		for i, spec := range specs {
			pts := datagen.OSMLike(spec.n, *seed+int64(i))
			if _, err := st.Register(spec.name, pts); err != nil {
				log.Printf("knncostd: registering %s: %v", spec.name, err)
				close(buildFailed)
				return
			}
		}
		if err := st.WaitReady(context.Background()); err != nil {
			log.Printf("knncostd: %v", err)
			close(buildFailed)
			return
		}
		log.Printf("catalogs ready in %v (%d built, %d cache hits)",
			time.Since(start).Round(time.Millisecond), st.CatalogBuilds(), st.CacheHits())
		gate.SetReady()
		log.Printf("ready: serving %d relations", st.View().NumRelations())
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	select {
	case <-buildFailed:
		httpSrv.Close()
		closeStore()
		return 1
	case err := <-serveErr:
		// Serve only returns before shutdown on a fatal listener error.
		log.Printf("knncostd: serve: %v", err)
		closeStore()
		return 1
	case <-sigCtx.Done():
	}

	// Graceful drain: stop advertising readiness, then give in-flight
	// requests the grace period, then drain the store's build pool the
	// same way. ErrServerClosed is the expected outcome of a clean
	// shutdown, not a failure.
	log.Printf("signal received, draining (timeout %v)", *drain)
	gate.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("knncostd: drain timeout exceeded: %v", err)
		httpSrv.Close()
		closeStore()
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("knncostd: serve: %v", err)
		closeStore()
		return 1
	}
	closeStore()
	log.Printf("drained cleanly")
	return 0
}

type relationSpec struct {
	name string
	n    int
}

// parseRelations parses the -relations flag. Empty or "none" means no boot
// relations — a shard daemon starts with whatever its scoped cache registry
// restores (or nothing) and is populated through the router.
func parseRelations(s string) ([]relationSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	var specs []relationSpec
	for _, spec := range strings.Split(s, ",") {
		name, countStr, ok := strings.Cut(strings.TrimSpace(spec), ":")
		if !ok {
			return nil, fmt.Errorf("bad relation spec %q (want name:numpoints)", spec)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad point count in %q", spec)
		}
		specs = append(specs, relationSpec{name: name, n: n})
	}
	return specs, nil
}

// --- router mode -------------------------------------------------------------

// routerConfig is the flag subset the router mode uses.
type routerConfig struct {
	addr            string
	peers           string
	replicas        int
	hedgeAfter      time.Duration
	hedgePercentile float64
	attemptTimeout  time.Duration
	breakerFailures int
	breakerBackoff  time.Duration

	estimateDeadline, costDeadline, adminDeadline time.Duration
	maxInFlight, queueLen                         int
	retryAfter, drain                             time.Duration
	readTimeout, writeTimeout, idleTimeout        time.Duration
	accessLog                                     bool
}

// routerVars bridges the current router's counters into expvar, published
// once and read through an atomic pointer (same pattern as the store vars:
// tests run several daemons per process).
var (
	routerVarsOnce sync.Once
	varsRouter     atomic.Pointer[shard.Router]
)

func publishRouterVars(rt *shard.Router) {
	varsRouter.Store(rt)
	routerVarsOnce.Do(func() {
		counter := func(read func(*shard.Router) int64) expvar.Func {
			return func() any {
				if r := varsRouter.Load(); r != nil {
					return read(r)
				}
				return int64(0)
			}
		}
		expvar.Publish("knnrouter_hedges", counter((*shard.Router).Hedges))
		expvar.Publish("knnrouter_hedge_wins", counter((*shard.Router).HedgeWins))
		expvar.Publish("knnrouter_rebalance_restores", counter((*shard.Router).WarmRestores))
		expvar.Publish("knnrouter_breaker_trips", counter((*shard.Router).BreakerTrips))
		expvar.Publish("knnrouter_requests", expvar.Func(func() any {
			if r := varsRouter.Load(); r != nil {
				return r.RequestsByShard()
			}
			return map[string]int64{}
		}))
	})
}

// parsePeers parses the -peers flag: comma-separated id=url, or bare URLs
// whose host:port becomes the shard ID.
func parsePeers(s string) ([]shard.Shard, error) {
	var shards []shard.Shard
	for _, spec := range strings.Split(s, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(spec, "=")
		if !ok {
			rawURL = spec
			u, err := url.Parse(rawURL)
			if err != nil || u.Host == "" {
				return nil, fmt.Errorf("bad peer %q (want id=url or url)", spec)
			}
			id = u.Host
		}
		shards = append(shards, shard.Shard{ID: id, BaseURL: rawURL})
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("router mode needs at least one peer (-peers id=url,...)")
	}
	return shards, nil
}

// runRouter serves the stateless shard router: the public estimation surface
// over a set of shard daemons, with no local relation store. Readiness flips
// once every peer has answered /healthz, so orchestrators sequence shard
// boot before router traffic the same way they sequence catalog builds on a
// single node.
func runRouter(cfg routerConfig, stdout io.Writer) int {
	shards, err := parsePeers(cfg.peers)
	if err != nil {
		log.Printf("knncostd: %v", err)
		return 2
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Printf("knncostd: listen: %v", err)
		return 1
	}
	fmt.Fprintf(stdout, "knncostd router listening on %s\n", ln.Addr())

	rt, err := shard.New(shards, shard.Options{
		Replicas:        cfg.replicas,
		HedgeAfter:      cfg.hedgeAfter,
		HedgePercentile: cfg.hedgePercentile,
		AttemptTimeout:  cfg.attemptTimeout,
		BreakerFailures: cfg.breakerFailures,
		BreakerBackoff:  cfg.breakerBackoff,
	})
	if err != nil {
		log.Printf("knncostd: %v", err)
		ln.Close()
		return 1
	}
	publishRouterVars(rt)

	wrapped, _ := middleware.Wrap(rt, middleware.Config{
		EstimateDeadline: cfg.estimateDeadline,
		CostDeadline:     cfg.costDeadline,
		AdminDeadline:    cfg.adminDeadline,
		MaxInFlight:      cfg.maxInFlight,
		QueueLen:         cfg.queueLen,
		RetryAfter:       cfg.retryAfter,
		AccessLog:        cfg.accessLog,
	})

	var gate middleware.Ready
	rootMux := http.NewServeMux()
	rootMux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	rootMux.Handle("GET /readyz", gate.Handler())
	rootMux.Handle("GET /debug/vars", expvar.Handler())
	rootMux.Handle("/", wrapped)

	httpSrv := &http.Server{
		Handler:           rootMux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}

	probeCtx, stopProbe := context.WithCancel(context.Background())
	defer stopProbe()
	go func() {
		start := time.Now()
		for _, s := range shards {
			probeURL := strings.TrimSuffix(s.BaseURL, "/") + "/healthz"
			for {
				req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, probeURL, nil)
				if err != nil {
					log.Printf("knncostd: probing %s: %v", s.ID, err)
					return
				}
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
				}
				select {
				case <-probeCtx.Done():
					return
				case <-time.After(100 * time.Millisecond):
				}
			}
		}
		log.Printf("all %d shards healthy in %v", len(shards), time.Since(start).Round(time.Millisecond))
		gate.SetReady()
		log.Printf("ready: routing across %d shards (replicas %d)", len(shards), cfg.replicas)
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		log.Printf("knncostd: serve: %v", err)
		return 1
	case <-sigCtx.Done():
	}

	log.Printf("signal received, draining (timeout %v)", cfg.drain)
	gate.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("knncostd: drain timeout exceeded: %v", err)
		httpSrv.Close()
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("knncostd: serve: %v", err)
		return 1
	}
	log.Printf("drained cleanly")
	return 0
}
