// Command knncostd serves k-NN cost estimates over HTTP: a schema of
// synthetic relations is indexed and all catalogs prebuilt at startup,
// then estimates are answered from memory in microseconds — the usage
// profile the paper motivates for location-based services.
//
// Usage:
//
//	knncostd -addr :8080 -relations hotels:50000,restaurants:200000
//
//	curl 'localhost:8080/relations'
//	curl 'localhost:8080/estimate/select?rel=restaurants&x=10&y=45&k=25'
//	curl 'localhost:8080/estimate/join?outer=hotels&inner=restaurants&k=5'
//	curl 'localhost:8080/cost/select?rel=restaurants&x=10&y=45&k=25'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"knncost/internal/datagen"
	"knncost/internal/index"
	"knncost/internal/quadtree"
	"knncost/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		relations = flag.String("relations", "hotels:50000,restaurants:200000",
			"comma-separated name:numpoints pairs")
		capacity = flag.Int("capacity", 256, "index block capacity")
		maxK     = flag.Int("maxk", 1000, "largest catalog-maintained k")
		sample   = flag.Int("sample", 200, "catalog-merge sample size")
		gridSize = flag.Int("grid", 10, "virtual-grid dimension")
		seed     = flag.Int64("seed", 1, "dataset seed base")
	)
	flag.Parse()

	trees := map[string]*index.Tree{}
	for i, spec := range strings.Split(*relations, ",") {
		name, countStr, ok := strings.Cut(strings.TrimSpace(spec), ":")
		if !ok {
			log.Fatalf("knncostd: bad relation spec %q (want name:numpoints)", spec)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n < 1 {
			log.Fatalf("knncostd: bad point count in %q", spec)
		}
		pts := datagen.OSMLike(n, *seed+int64(i))
		trees[name] = quadtree.Build(pts, quadtree.Options{
			Capacity: *capacity,
			Bounds:   datagen.WorldBounds,
		}).Index()
		log.Printf("indexed %s: %d points, %d blocks", name, n, trees[name].NumBlocks())
	}

	start := time.Now()
	srv, err := service.New(trees, service.Options{
		MaxK:       *maxK,
		SampleSize: *sample,
		GridSize:   *gridSize,
	})
	if err != nil {
		log.Fatalf("knncostd: %v", err)
	}
	log.Printf("catalogs built in %v", time.Since(start).Round(time.Millisecond))

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("knncostd listening on %s\n", *addr)
	log.Fatal(httpSrv.ListenAndServe())
}
