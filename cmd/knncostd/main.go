// Command knncostd serves k-NN cost estimates over HTTP: a schema of
// synthetic relations is indexed and all catalogs prebuilt at startup,
// then estimates are answered from memory in microseconds — the usage
// profile the paper motivates for location-based services.
//
// Usage:
//
//	knncostd -addr :8080 -relations hotels:50000,restaurants:200000
//
//	curl 'localhost:8080/relations'
//	curl 'localhost:8080/estimate/select?rel=restaurants&x=10&y=45&k=25'
//	curl 'localhost:8080/estimate/join?outer=hotels&inner=restaurants&k=5'
//	curl 'localhost:8080/cost/select?rel=restaurants&x=10&y=45&k=25'
//
// The daemon is hardened for production traffic:
//
//   - The listener binds immediately; /healthz (liveness) answers 200 from
//     the first moment, /readyz answers 503 "starting" until every catalog
//     is built, 200 "ready" after, and 503 "draining" during shutdown.
//   - Every other route is wrapped in the middleware stack of
//     internal/service/middleware: request IDs, access logging, panic
//     recovery (JSON 500, process survives), per-route deadlines (stricter
//     for the expensive ground-truth /cost/* routes), and load shedding
//     with 503 + Retry-After beyond -max-in-flight plus -queue.
//   - SIGINT/SIGTERM trigger a graceful drain: the ready gate flips to
//     draining, in-flight requests get up to -drain-timeout to finish, and
//     the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"knncost/internal/datagen"
	"knncost/internal/index"
	"knncost/internal/quadtree"
	"knncost/internal/service"
	"knncost/internal/service/middleware"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

// run is main with injectable args and stdout, so tests (and the soak
// script via the printed listen address) can drive a full daemon lifecycle
// including the signal-triggered drain. It returns the process exit code.
func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("knncostd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8080", "listen address (use :0 for a random port)")
		relations = fs.String("relations", "hotels:50000,restaurants:200000",
			"comma-separated name:numpoints pairs")
		capacity = fs.Int("capacity", 256, "index block capacity")
		maxK     = fs.Int("maxk", 1000, "largest catalog-maintained k")
		sample   = fs.Int("sample", 200, "catalog-merge sample size")
		gridSize = fs.Int("grid", 10, "virtual-grid dimension")
		seed     = fs.Int64("seed", 1, "dataset seed base")

		estimateDeadline = fs.Duration("deadline-estimate", 5*time.Second,
			"per-request deadline for /estimate/* and metadata routes (0 disables)")
		costDeadline = fs.Duration("deadline-cost", 2*time.Second,
			"per-request deadline for the expensive ground-truth /cost/* routes (0 disables)")
		maxInFlight = fs.Int("max-in-flight", 256, "max concurrently served requests (0 disables shedding)")
		queueLen    = fs.Int("queue", 128, "admission-queue length beyond max-in-flight")
		retryAfter  = fs.Duration("retry-after", time.Second, "Retry-After on shed 503s")
		drain       = fs.Duration("drain-timeout", 10*time.Second,
			"grace period for in-flight requests on SIGINT/SIGTERM")
		readTimeout  = fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
		idleTimeout  = fs.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout")
		accessLog    = fs.Bool("access-log", true, "log one structured line per request")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	specs, err := parseRelations(*relations)
	if err != nil {
		log.Printf("knncostd: %v", err)
		return 2
	}

	// Bind before building catalogs so orchestrators see liveness (and a
	// truthful "starting" readiness) immediately; catalog construction
	// for production-sized relations takes seconds.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("knncostd: listen: %v", err)
		return 1
	}
	fmt.Fprintf(stdout, "knncostd listening on %s\n", ln.Addr())

	var (
		gate    middleware.Ready
		app     atomic.Pointer[http.Handler]
		rootMux = http.NewServeMux()
	)
	rootMux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	rootMux.Handle("GET /readyz", gate.Handler())
	rootMux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		h := app.Load()
		if h == nil {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"starting: catalogs are still building"}`)
			return
		}
		(*h).ServeHTTP(w, r)
	})

	httpSrv := &http.Server{
		Handler:           rootMux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	buildFailed := make(chan struct{})
	go func() {
		trees, err := buildTrees(specs, *capacity, *seed)
		if err != nil {
			log.Printf("knncostd: %v", err)
			close(buildFailed)
			return
		}
		start := time.Now()
		srv, err := service.New(trees, service.Options{
			MaxK:       *maxK,
			SampleSize: *sample,
			GridSize:   *gridSize,
		})
		if err != nil {
			log.Printf("knncostd: %v", err)
			close(buildFailed)
			return
		}
		log.Printf("catalogs built in %v", time.Since(start).Round(time.Millisecond))
		wrapped, _ := middleware.Wrap(srv, middleware.Config{
			EstimateDeadline: *estimateDeadline,
			CostDeadline:     *costDeadline,
			MaxInFlight:      *maxInFlight,
			QueueLen:         *queueLen,
			RetryAfter:       *retryAfter,
			AccessLog:        *accessLog,
		})
		app.Store(&wrapped)
		gate.SetReady()
		log.Printf("ready: serving %d relations", len(trees))
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	select {
	case <-buildFailed:
		httpSrv.Close()
		return 1
	case err := <-serveErr:
		// Serve only returns before shutdown on a fatal listener error.
		log.Printf("knncostd: serve: %v", err)
		return 1
	case <-sigCtx.Done():
	}

	// Graceful drain: stop advertising readiness, then give in-flight
	// requests the grace period. ErrServerClosed is the expected outcome
	// of a clean shutdown, not a failure.
	log.Printf("signal received, draining (timeout %v)", *drain)
	gate.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("knncostd: drain timeout exceeded: %v", err)
		httpSrv.Close()
		return 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("knncostd: serve: %v", err)
		return 1
	}
	log.Printf("drained cleanly")
	return 0
}

type relationSpec struct {
	name string
	n    int
}

func parseRelations(s string) ([]relationSpec, error) {
	var specs []relationSpec
	for _, spec := range strings.Split(s, ",") {
		name, countStr, ok := strings.Cut(strings.TrimSpace(spec), ":")
		if !ok {
			return nil, fmt.Errorf("bad relation spec %q (want name:numpoints)", spec)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad point count in %q", spec)
		}
		specs = append(specs, relationSpec{name: name, n: n})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no relations given")
	}
	return specs, nil
}

func buildTrees(specs []relationSpec, capacity int, seed int64) (map[string]*index.Tree, error) {
	trees := map[string]*index.Tree{}
	for i, spec := range specs {
		pts := datagen.OSMLike(spec.n, seed+int64(i))
		trees[spec.name] = quadtree.Build(pts, quadtree.Options{
			Capacity: capacity,
			Bounds:   datagen.WorldBounds,
		}).Index()
		log.Printf("indexed %s: %d points, %d blocks", spec.name, spec.n, trees[spec.name].NumBlocks())
	}
	return trees, nil
}
