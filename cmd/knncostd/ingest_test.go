package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// sendJSON issues one bodied request and decodes the JSON reply.
func sendJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: non-JSON body: %v", method, url, err)
	}
	return resp.StatusCode, out
}

func feedBody(n int) string {
	var b bytes.Buffer
	b.WriteString(`{"name":"feed","points":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "[%d.%d,%d.%d]", i%89, i%7, i/89, i%13)
	}
	b.WriteString(`]}`)
	return b.String()
}

// TestIngestSurvivesRestartAndConverges is the daemon-level crash-recovery
// acceptance: stream mutations into a relation with compaction disabled (so
// the WAL is their only home), stop the daemon, restart against the same
// cache directory, and require (a) every mutation replayed from the log,
// (b) the relation converging to the mutated point set, and (c) estimates
// bit-identical to a from-scratch registration of that exact sequence.
func TestIngestSurvivesRestartAndConverges(t *testing.T) {
	cacheDir := t.TempDir()
	base, exit := startDaemon(t,
		"-cache-dir", cacheDir, "-compact-threshold", "1000000", "-compact-interval=-1s")
	waitReady(t, base)

	if code, body := sendJSON(t, http.MethodPost, base+"/relations", feedBody(400)); code != http.StatusAccepted {
		t.Fatalf("register feed: %d %v", code, body)
	}
	waitRelationReady(t, base, "feed")

	// Three appends and one delete; with compaction off they live only in
	// the WAL.
	for b := 0; b < 3; b++ {
		var pts []string
		for i := 0; i < 5; i++ {
			pts = append(pts, fmt.Sprintf("[%d.25,%d.75]", 90+b, i))
		}
		code, body := sendJSON(t, http.MethodPost, base+"/relations/feed/points",
			`{"points":[`+strings.Join(pts, ",")+`]}`)
		if code != http.StatusOK {
			t.Fatalf("append %d: %d %v", b, code, body)
		}
		if got := body["delta_ops"].(float64); int(got) != b+1 {
			t.Fatalf("append %d: delta_ops %v", b, got)
		}
	}
	if code, body := sendJSON(t, http.MethodDelete, base+"/relations/feed/points",
		`{"points":[[90.25,0.75]]}`); code != http.StatusOK {
		t.Fatalf("delete: %d %v", code, body)
	} else if int(body["num_points"].(float64)) != 400 {
		t.Fatalf("published snapshot moved without compaction: %v", body["num_points"])
	}
	if got := expvarInt(t, base, "knncost_wal_appends"); got < 4 {
		t.Fatalf("knncost_wal_appends = %d, want >= 4", got)
	}
	if got := expvarInt(t, base, "knncost_wal_fsyncs"); got < 1 {
		t.Fatalf("knncost_wal_fsyncs = %d, want >= 1", got)
	}
	stopDaemon(t, exit)

	// Restart with compaction enabled: the WAL replays the four mutations
	// and background compaction folds them into fresh catalogs.
	base, exit = startDaemon(t,
		"-cache-dir", cacheDir, "-compact-threshold", "5", "-compact-interval", "50ms")
	waitReady(t, base)
	if got := expvarInt(t, base, "knncost_wal_replayed"); got != 4 {
		t.Fatalf("knncost_wal_replayed = %d, want 4", got)
	}
	waitRelationReady(t, base, "feed")
	const wantPoints = 400 + 15 - 1
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, st := getStatus(t, base+"/relations/feed/status")
		np, _ := st["num_points"].(float64)
		dops, _ := st["delta_ops"].(float64)
		if code == http.StatusOK && int(np) == wantPoints && dops == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed deltas never drained: %d %v", code, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := expvarInt(t, base, "knncost_compactions"); got < 1 {
		t.Fatalf("knncost_compactions = %d, want >= 1", got)
	}

	// The differential gate, end to end: the logical dump re-registered
	// from scratch must estimate bit-identically to the compacted original.
	resp, err := http.Get(base + "/relations/feed/points")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("points dump: %d %v", resp.StatusCode, err)
	}
	scratch := bytes.Replace(dump, []byte(`"name":"feed"`), []byte(`"name":"scratch"`), 1)
	if code, body := sendJSON(t, http.MethodPost, base+"/relations", string(scratch)); code != http.StatusAccepted {
		t.Fatalf("register scratch: %d %v", code, body)
	}
	waitRelationReady(t, base, "scratch")
	for _, probe := range []string{
		"x=10&y=4&k=1", "x=44.5&y=2.2&k=9", "x=89&y=1&k=33",
	} {
		_, a := getStatus(t, base+"/estimate/select?rel=feed&"+probe)
		_, b := getStatus(t, base+"/estimate/select?rel=scratch&"+probe)
		if a["blocks"] != b["blocks"] {
			t.Fatalf("probe %s: feed %v != scratch %v (recovery not bit-exact)", probe, a["blocks"], b["blocks"])
		}
	}
	stopDaemon(t, exit)
}

// startRouterDaemon boots a run() in router mode and returns its base URL.
func startRouterDaemon(t *testing.T, extraArgs ...string) (string, chan int) {
	t.Helper()
	pr, pw := io.Pipe()
	args := append([]string{"-addr", "127.0.0.1:0", "-access-log=false", "-router"}, extraArgs...)
	exit := make(chan int, 1)
	go func() {
		exit <- run(args, pw)
		pw.Close()
	}()
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	go io.Copy(io.Discard, pr)
	addr := strings.TrimSpace(strings.TrimPrefix(line, "knncostd router listening on "))
	if addr == line {
		t.Fatalf("unexpected startup line %q", line)
	}
	return "http://" + addr, exit
}

// TestRouterIngestWiring pins the daemon wiring of the router's mutation
// fan-out and breaker flags: a shard daemon plus a router daemon in one
// process, a mutation streamed through the router landing on the shard, and
// the knnrouter_breaker_trips expvar present. Both daemons share the
// process's signal handling, so one SIGTERM drains both.
func TestRouterIngestWiring(t *testing.T) {
	shardBase, shardExit := startDaemon(t,
		"-relations", "none", "-shard-id", "a", "-cache-dir", t.TempDir())
	waitReady(t, shardBase)
	routerBase, routerExit := startRouterDaemon(t,
		"-peers", "a="+shardBase, "-replicas", "1",
		"-attempt-timeout", "500ms", "-breaker-failures", "2", "-breaker-backoff", "20ms")
	waitReady(t, routerBase)

	if code, body := sendJSON(t, http.MethodPost, routerBase+"/relations", feedBody(150)); code != http.StatusAccepted {
		t.Fatalf("register through router: %d %v", code, body)
	}
	waitRelationReady(t, routerBase, "feed")
	code, body := sendJSON(t, http.MethodPost, routerBase+"/relations/feed/points", `{"points":[[7.5,8.5]]}`)
	if code != http.StatusOK {
		t.Fatalf("mutate through router: %d %v", code, body)
	}
	// The shard holds the write (the logical dump includes pending deltas).
	if _, dump := getStatus(t, shardBase+"/relations/feed/points"); len(dump["points"].([]any)) != 151 {
		t.Fatalf("shard logical dump has %d points, want 151", len(dump["points"].([]any)))
	}
	if got := expvarInt(t, routerBase, "knnrouter_breaker_trips"); got != 0 {
		t.Fatalf("knnrouter_breaker_trips = %d, want 0", got)
	}

	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	for name, exit := range map[string]chan int{"shard": shardExit, "router": routerExit} {
		select {
		case code := <-exit:
			if code != 0 {
				t.Fatalf("%s daemon exit code %d, want 0", name, code)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s daemon did not exit within 30s of SIGTERM", name)
		}
	}
}
