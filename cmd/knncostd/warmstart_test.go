package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// expvarInt reads one integer counter from /debug/vars.
func expvarInt(t *testing.T, base, name string) int64 {
	t.Helper()
	code, vars := getStatus(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}
	v, ok := vars[name].(float64)
	if !ok {
		t.Fatalf("/debug/vars has no %q (have %d vars)", name, len(vars))
	}
	return int64(v)
}

func waitRelationReady(t *testing.T, base, name string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := getStatus(t, base+"/relations/"+name+"/status")
		if code == http.StatusOK && body["state"] == "ready" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("relation %s not ready; last: %d %v", name, code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func stopDaemon(t *testing.T, exit chan int) {
	t.Helper()
	syscall.Kill(os.Getpid(), syscall.SIGTERM)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exit code %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
}

// TestWarmRestartServesIdenticalEstimates is the daemon-level cache
// acceptance: run with -cache-dir, register a relation at runtime, stop;
// a restarted daemon must restore the whole schema — boot and runtime
// relations — from the cache with zero catalog builds (expvar-checked) and
// serve estimates identical to the first run's.
func TestWarmRestartServesIdenticalEstimates(t *testing.T) {
	cacheDir := t.TempDir()
	base, exit := startDaemon(t, "-cache-dir", cacheDir)
	waitReady(t, base)

	// Register one relation at runtime; the restart must bring it back too.
	var body bytes.Buffer
	body.WriteString(`{"name":"runtime","points":[`)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, "[%d.%d,%d.%d]", i%100, i%7, i/100, i%13)
	}
	body.WriteString(`]}`)
	resp, err := http.Post(base+"/relations", "application/json", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("runtime registration: %d, want 202", resp.StatusCode)
	}
	waitRelationReady(t, base, "runtime")

	probes := []string{
		"/estimate/select?rel=hotels&x=10&y=45&k=5",
		"/estimate/select?rel=restaurants&x=-20&y=30&k=33",
		"/estimate/select?rel=runtime&x=50&y=10&k=9",
		"/estimate/join?outer=hotels&inner=restaurants&k=12",
		"/estimate/join?outer=runtime&inner=hotels&k=7",
		"/estimate/join?outer=restaurants&inner=runtime&k=3&method=virtualgrid",
	}
	cold := make(map[string]float64, len(probes))
	for _, p := range probes {
		code, body := getStatus(t, base+p)
		if code != http.StatusOK {
			t.Fatalf("cold %s: %d %v", p, code, body)
		}
		blocks, ok := body["blocks"].(float64)
		if !ok || blocks < 1 {
			t.Fatalf("cold %s: blocks %v", p, body["blocks"])
		}
		cold[p] = blocks
	}
	if builds := expvarInt(t, base, "knncost_catalog_builds"); builds == 0 {
		t.Fatal("cold run built no catalogs — warm-restart assertion would be vacuous")
	}
	stopDaemon(t, exit)

	base2, exit2 := startDaemon(t, "-cache-dir", cacheDir)
	waitReady(t, base2)
	waitRelationReady(t, base2, "runtime")
	if builds := expvarInt(t, base2, "knncost_catalog_builds"); builds != 0 {
		t.Errorf("warm restart built %d catalogs, want 0 (everything cached)", builds)
	}
	if hits := expvarInt(t, base2, "knncost_cache_hits"); hits == 0 {
		t.Error("warm restart recorded no cache hits")
	}
	for _, p := range probes {
		code, body := getStatus(t, base2+p)
		if code != http.StatusOK {
			t.Fatalf("warm %s: %d %v", p, code, body)
		}
		// Byte-identical catalogs mean bit-identical estimates; exact
		// float equality is the assertion, not a tolerance.
		if blocks := body["blocks"].(float64); blocks != cold[p] {
			t.Errorf("warm %s: blocks %v != cold %v", p, blocks, cold[p])
		}
	}
	stopDaemon(t, exit2)
}

// TestRuntimeRegistrationWithoutCache: the admin endpoints work with no
// cache directory at all — builds are simply always cold.
func TestRuntimeRegistrationWithoutCache(t *testing.T) {
	base, exit := startDaemon(t)
	waitReady(t, base)
	resp, err := http.Post(base+"/relations", "application/json",
		bytes.NewReader([]byte(`{"name":"tmp","points":[[1,1],[2,2],[3,3],[4,4],[5,5],[6,1],[7,2],[8,3]]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("registration: %d", resp.StatusCode)
	}
	waitRelationReady(t, base, "tmp")
	code, body := getStatus(t, base+"/estimate/select?rel=tmp&x=4&y=2&k=2")
	if code != http.StatusOK {
		t.Fatalf("estimate on runtime relation: %d %v", code, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/relations/tmp", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}
	stopDaemon(t, exit)
}
