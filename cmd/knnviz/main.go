// Command knnviz renders an OSM-like synthetic dataset with its
// region-quadtree decomposition to SVG — the repository's Figure 10.
//
// Usage:
//
//	knnviz -n 500000 -capacity 1024 -o map.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"knncost/internal/datagen"
	"knncost/internal/quadtree"
	"knncost/internal/viz"
)

func main() {
	var (
		n        = flag.Int("n", 200_000, "number of points to generate")
		seed     = flag.Int64("seed", 1, "dataset seed")
		capacity = flag.Int("capacity", 512, "quadtree block capacity")
		out      = flag.String("o", "knnviz.svg", "output SVG path")
		width    = flag.Int("width", 1200, "image width in pixels")
		maxDots  = flag.Int("dots", 30_000, "maximum points drawn (sampled)")
		noBlocks = flag.Bool("noblocks", false, "omit the quadtree decomposition")
	)
	flag.Parse()

	pts := datagen.OSMLike(*n, *seed)
	ix := quadtree.Build(pts, quadtree.Options{
		Capacity: *capacity,
		Bounds:   datagen.WorldBounds,
	}).Index()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnviz:", err)
		os.Exit(1)
	}
	err = viz.RenderSVG(f, pts, ix, viz.Options{
		WidthPx:    *width,
		MaxPoints:  *maxDots,
		Seed:       *seed,
		DrawBlocks: !*noBlocks,
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "knnviz:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d points, %d blocks\n", *out, len(pts), ix.NumBlocks())
}
