package knncost_test

import (
	"bytes"
	"math"
	"testing"

	"knncost"
)

func TestFacadePersistenceRoundTrips(t *testing.T) {
	pts := knncost.GenerateOSMLike(15000, 9)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 128})
	other := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(20000, 10), knncost.IndexOptions{Capacity: 128})

	stair, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: 150})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := stair.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := knncost.LoadStaircaseEstimator(ix, &buf, knncost.StaircaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := pts[3]
	a, err := stair.EstimateSelect(q, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.EstimateSelect(q, 40)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("staircase round trip diverged: %g vs %g", a, b)
	}

	cm, err := knncost.NewCatalogMergeEstimator(ix, other, 100, 150)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := cm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cmLoaded, err := knncost.LoadCatalogMergeEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := cm.EstimateJoin(25)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cmLoaded.EstimateJoin(25)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("catalog-merge round trip diverged: %g vs %g", e1, e2)
	}

	vg, err := knncost.NewVirtualGridEstimator(other, 6, 6, 150)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := vg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	vgLoaded, err := knncost.LoadVirtualGridEstimator(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := vg.EstimateJoin(ix, 25)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := vgLoaded.EstimateJoin(ix, 25)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("virtual-grid round trip diverged: %g vs %g", v1, v2)
	}
}

func TestFacadeKDTreeIndex(t *testing.T) {
	pts := knncost.GenerateOSMLike(10000, 11)
	kd := knncost.BuildKDTreeIndex(pts, knncost.IndexOptions{Capacity: 128})
	qt := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 128})
	q := pts[77]
	a := kd.SelectKNN(q, 8)
	b := qt.SelectKNN(q, 8)
	for i := range a {
		if diff := a[i].Dist - b[i].Dist; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("neighbor %d: kd %g, quadtree %g", i, a[i].Dist, b[i].Dist)
		}
	}
	// A staircase over the kd-tree attaches to its own blocks (it is
	// space-partitioning).
	stair, err := knncost.NewStaircaseEstimator(kd, knncost.StaircaseOptions{MaxK: 100})
	if err != nil {
		t.Fatal(err)
	}
	est, err := stair.EstimateSelect(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(kd.SelectKNNCost(q, 20))
	if actual > 0 && math.Abs(est-actual)/actual > 2 {
		t.Errorf("kd staircase estimate %g far from actual %g", est, actual)
	}
}

func TestFacadeRangeOperations(t *testing.T) {
	pts := knncost.GenerateUniform(20000, 12, knncost.NewRect(0, 0, 100, 100))
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 128})
	window := knncost.NewRect(10, 10, 30, 30) // 4% of the area
	got, blocks := ix.RangeSelect(window)
	want := 0
	for _, p := range pts {
		if window.Contains(p) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("RangeSelect returned %d points, brute force %d", len(got), want)
	}
	if cost := ix.RangeCost(window); cost != blocks {
		t.Errorf("RangeCost %d != blocks scanned %d", cost, blocks)
	}
	sel := ix.RangeSelectivity(window)
	if sel < 0.03 || sel > 0.05 {
		t.Errorf("selectivity %g, want ~0.04", sel)
	}
}

func TestFacadeRegionPlanning(t *testing.T) {
	pts := knncost.GenerateOSMLike(20000, 13)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 128})
	rel := knncost.NewRelation("places", ix, nil)
	q := pts[5]
	region := knncost.NewRect(q.X-10, q.Y-10, q.X+10, q.Y+10)
	d, err := knncost.PlanKNNSelectInRegion(rel, q, 5, region)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := knncost.ExecuteSelect(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range exec.Neighbors {
		if !region.Contains(n.Point) {
			t.Fatalf("result %v outside region", n.Point)
		}
	}
}
