package knncost_test

import (
	"math"
	"testing"

	"knncost"
)

// TestFacadeTechniqueResolution drives the named-technique facade across
// every registered technique and every index kind the facade can build.
func TestFacadeTechniqueResolution(t *testing.T) {
	pts := knncost.GenerateOSMLike(4000, 3)
	bounds := knncost.WorldBounds()
	rt, err := knncost.BuildRTreeIndex(pts, knncost.IndexOptions{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	indexes := map[string]*knncost.Index{
		"quadtree": knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 64, Bounds: bounds}),
		"kdtree":   knncost.BuildKDTreeIndex(pts, knncost.IndexOptions{Capacity: 64, Bounds: bounds}),
		"grid":     knncost.BuildGridIndex(pts, 12, 12, bounds),
		"rtree":    rt,
	}
	inner := knncost.BuildQuadtreeIndex(knncost.GenerateOSMLike(3000, 4),
		knncost.IndexOptions{Capacity: 64, Bounds: bounds})
	q := pts[7]

	for kind, ix := range indexes {
		for _, ti := range knncost.SelectTechniques() {
			est, err := ix.SelectEstimatorFor(ti.Name)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, ti.Name, err)
			}
			got, err := est.EstimateSelect(q, 10)
			if err != nil || math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
				t.Errorf("%s/%s: estimate %v, %v", kind, ti.Name, got, err)
			}
			// Resolution is cached: asking again yields the same estimator.
			again, err := ix.SelectEstimatorFor(ti.Name)
			if err != nil || again != est {
				t.Errorf("%s/%s: second resolution rebuilt the estimator", kind, ti.Name)
			}
		}
		for _, ti := range knncost.JoinTechniques() {
			est, err := ix.JoinEstimatorFor(ti.Name, inner)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, ti.Name, err)
			}
			got, err := est.EstimateJoin(10)
			if err != nil || math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
				t.Errorf("%s/%s join: estimate %v, %v", kind, ti.Name, got, err)
			}
		}
	}

	ix := indexes["quadtree"]
	if _, err := ix.SelectEstimatorFor("nope"); err == nil {
		t.Error("unknown select technique accepted")
	}
	if _, err := ix.JoinEstimatorFor("nope", inner); err == nil {
		t.Error("unknown join technique accepted")
	}

	// Aliases resolve to the same cached artifact as the canonical name.
	canon, err := ix.SelectEstimatorFor("staircase-cc")
	if err != nil {
		t.Fatal(err)
	}
	aliased, err := ix.SelectEstimatorFor("staircase")
	if err != nil || aliased != canon {
		t.Errorf("alias resolved to a different estimator (%v)", err)
	}
}

// TestFacadeTechniqueListings pins the names the facade advertises; these
// are the strings CLIs and docs reference.
func TestFacadeTechniqueListings(t *testing.T) {
	wantSelect := []string{"density", "staircase-c", "staircase-cc"}
	sel := knncost.SelectTechniques()
	if len(sel) != len(wantSelect) {
		t.Fatalf("SelectTechniques: %d entries, want %d", len(sel), len(wantSelect))
	}
	for i, ti := range sel {
		if ti.Name != wantSelect[i] {
			t.Errorf("SelectTechniques[%d] = %s, want %s", i, ti.Name, wantSelect[i])
		}
		if ti.Summary == "" {
			t.Errorf("%s: empty summary", ti.Name)
		}
	}
	wantJoin := []string{"aknn-bounds", "block-sample", "catalog-merge", "virtual-grid"}
	join := knncost.JoinTechniques()
	if len(join) != len(wantJoin) {
		t.Fatalf("JoinTechniques: %d entries, want %d", len(join), len(wantJoin))
	}
	for i, ti := range join {
		if ti.Name != wantJoin[i] {
			t.Errorf("JoinTechniques[%d] = %s, want %s", i, ti.Name, wantJoin[i])
		}
	}
}

// TestFacadeNewRelationTechnique plans through a named technique end to end.
func TestFacadeNewRelationTechnique(t *testing.T) {
	ix := knncost.BuildQuadtreeIndex(knncost.GenerateOSMLike(5000, 5),
		knncost.IndexOptions{Capacity: 128, Bounds: knncost.WorldBounds()})
	rel, err := knncost.NewRelationTechnique("places", ix, "staircase-cc")
	if err != nil {
		t.Fatal(err)
	}
	d, err := knncost.PlanKNNSelect(rel, knncost.Point{X: 10, Y: 45}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Chosen.EstimatedCost <= 0 {
		t.Errorf("chosen plan estimates %v blocks", d.Chosen.EstimatedCost)
	}
	if _, err := knncost.NewRelationTechnique("places", ix, "nope"); err == nil {
		t.Error("unknown technique accepted")
	}

	sweep := knncost.SelectTechniqueEstimates(rel, knncost.Point{X: 10, Y: 45}, 10)
	if len(sweep) != len(knncost.SelectTechniques()) {
		t.Fatalf("sweep has %d entries", len(sweep))
	}
	for _, te := range sweep {
		if te.Err != nil {
			t.Errorf("%s: %v", te.Technique, te.Err)
		}
	}
}
