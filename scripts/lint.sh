#!/bin/sh
# Static-analysis gate: staticcheck + govulncheck at pinned versions, so the
# lint result is reproducible across machines. Tools are installed into the
# repo-local .tools/ directory (never into the host GOPATH); in offline
# environments where the pinned modules cannot be fetched and the tools are
# not already present, the gate degrades to a warning and exits 0 — the
# compile/test/race/accuracy gates in check.sh do not depend on it.
set -eu

cd "$(dirname "$0")/.."

STATICCHECK_VERSION=2025.1
GOVULNCHECK_VERSION=v1.1.4
TOOLS_DIR="$(pwd)/.tools"

# resolve_tool NAME MODULE@VERSION: prints the tool path, installing it into
# .tools/ if needed. Prints nothing when the tool is unavailable.
resolve_tool() {
	name=$1
	module=$2
	if [ -x "$TOOLS_DIR/$name" ]; then
		echo "$TOOLS_DIR/$name"
		return 0
	fi
	if GOBIN="$TOOLS_DIR" go install "$module" >/dev/null 2>&1 && [ -x "$TOOLS_DIR/$name" ]; then
		echo "$TOOLS_DIR/$name"
		return 0
	fi
	# Fall back to a tool already on PATH (version may differ; report it).
	if command -v "$name" >/dev/null 2>&1; then
		command -v "$name"
		return 0
	fi
	return 1
}

status=0

# Formatting drift: every tracked Go file must be gofmt-clean.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "lint: gofmt drift in:" >&2
	echo "$unformatted" >&2
	status=1
else
	echo "lint: gofmt clean"
fi

# go.mod / go.sum drift: `go mod tidy` must be a no-op. Run against copies
# so a failing check never rewrites the tracked files.
tidy_dir=$(mktemp -d)
cp go.mod "$tidy_dir/go.mod.orig"
[ -f go.sum ] && cp go.sum "$tidy_dir/go.sum.orig"
if go mod tidy >/dev/null 2>&1; then
	if ! cmp -s go.mod "$tidy_dir/go.mod.orig"; then
		echo "lint: go.mod drift — run 'go mod tidy' and commit the result" >&2
		cp "$tidy_dir/go.mod.orig" go.mod
		status=1
	elif [ -f go.sum ] && ! cmp -s go.sum "$tidy_dir/go.sum.orig"; then
		echo "lint: go.sum drift — run 'go mod tidy' and commit the result" >&2
		cp "$tidy_dir/go.mod.orig" go.mod
		cp "$tidy_dir/go.sum.orig" go.sum
		status=1
	else
		echo "lint: go mod tidy clean"
	fi
else
	echo "lint: WARNING: go mod tidy failed (offline?); skipping drift check" >&2
	cp "$tidy_dir/go.mod.orig" go.mod
	[ -f "$tidy_dir/go.sum.orig" ] && cp "$tidy_dir/go.sum.orig" go.sum
fi
rm -rf "$tidy_dir"

if staticcheck_bin=$(resolve_tool staticcheck "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"); then
	echo "lint: staticcheck ($staticcheck_bin)"
	"$staticcheck_bin" ./... || status=1
else
	echo "lint: WARNING: staticcheck $STATICCHECK_VERSION unavailable (offline?); skipping" >&2
fi

if govulncheck_bin=$(resolve_tool govulncheck "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"); then
	echo "lint: govulncheck ($govulncheck_bin)"
	"$govulncheck_bin" ./... || status=1
else
	echo "lint: WARNING: govulncheck $GOVULNCHECK_VERSION unavailable (offline?); skipping" >&2
fi

exit $status
