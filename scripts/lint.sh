#!/bin/sh
# Static-analysis gate: staticcheck + govulncheck at pinned versions, so the
# lint result is reproducible across machines. Tools are installed into the
# repo-local .tools/ directory (never into the host GOPATH); in offline
# environments where the pinned modules cannot be fetched and the tools are
# not already present, the gate degrades to a warning and exits 0 — the
# compile/test/race/accuracy gates in check.sh do not depend on it.
set -eu

cd "$(dirname "$0")/.."

STATICCHECK_VERSION=2025.1
GOVULNCHECK_VERSION=v1.1.4
TOOLS_DIR="$(pwd)/.tools"

# resolve_tool NAME MODULE@VERSION: prints the tool path, installing it into
# .tools/ if needed. Prints nothing when the tool is unavailable.
resolve_tool() {
	name=$1
	module=$2
	if [ -x "$TOOLS_DIR/$name" ]; then
		echo "$TOOLS_DIR/$name"
		return 0
	fi
	if GOBIN="$TOOLS_DIR" go install "$module" >/dev/null 2>&1 && [ -x "$TOOLS_DIR/$name" ]; then
		echo "$TOOLS_DIR/$name"
		return 0
	fi
	# Fall back to a tool already on PATH (version may differ; report it).
	if command -v "$name" >/dev/null 2>&1; then
		command -v "$name"
		return 0
	fi
	return 1
}

status=0

if staticcheck_bin=$(resolve_tool staticcheck "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION"); then
	echo "lint: staticcheck ($staticcheck_bin)"
	"$staticcheck_bin" ./... || status=1
else
	echo "lint: WARNING: staticcheck $STATICCHECK_VERSION unavailable (offline?); skipping" >&2
fi

if govulncheck_bin=$(resolve_tool govulncheck "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION"); then
	echo "lint: govulncheck ($govulncheck_bin)"
	"$govulncheck_bin" ./... || status=1
else
	echo "lint: WARNING: govulncheck $GOVULNCHECK_VERSION unavailable (offline?); skipping" >&2
fi

exit $status
