#!/bin/sh
# Coverage gate: print per-package statement coverage and fail when
# internal/engine — the technique registry and relation engine every layer
# rests on — drops below the floor.
set -eu

cd "$(dirname "$0")/.."

ENGINE_PKG=knncost/internal/engine
ENGINE_FLOOR=85.0

out=$(go test -count=1 -cover ./...) || {
	echo "$out"
	echo "cover: tests failed" >&2
	exit 1
}
echo "$out"

engine_cov=$(echo "$out" | awk -v pkg="$ENGINE_PKG" '
	$1 == "ok" && $2 == pkg {
		for (i = 3; i <= NF; i++) if ($i == "coverage:") {
			cov = $(i + 1)
			sub(/%/, "", cov)
			print cov
		}
	}')

if [ -z "$engine_cov" ]; then
	echo "cover: no coverage reported for $ENGINE_PKG" >&2
	exit 1
fi

echo "$engine_cov" | awk -v floor="$ENGINE_FLOOR" -v pkg="$ENGINE_PKG" '
	{
		if ($1 + 0 < floor + 0) {
			printf "cover: FAIL: %s at %.1f%%, floor %.1f%%\n", pkg, $1, floor
			exit 1
		}
		printf "cover: PASS: %s at %.1f%% (floor %.1f%%)\n", pkg, $1, floor
	}'
