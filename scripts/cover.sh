#!/bin/sh
# Coverage gate: print per-package statement coverage and fail when a
# floored package drops below its floor — internal/engine (the technique
# registry and relation engine every layer rests on), internal/aknn (the
# bounds-only AkNN join and its estimator), internal/shard (the
# scatter-gather routing tier), internal/wal (the crash-safety foundation
# of streaming ingest), internal/optimizer (the multi-predicate plan
# enumerator and its invalidation-correct plan cache), and internal/store
# (the relation store, its mmap catalog cache, and the space-budget
# auto-tuner).
set -eu

cd "$(dirname "$0")/.."

out=$(go test -count=1 -cover ./...) || {
	echo "$out"
	echo "cover: tests failed" >&2
	exit 1
}
echo "$out"

# check_floor <pkg> <floor>
check_floor() {
	pkg=$1
	floor=$2
	cov=$(echo "$out" | awk -v pkg="$pkg" '
		$1 == "ok" && $2 == pkg {
			for (i = 3; i <= NF; i++) if ($i == "coverage:") {
				cov = $(i + 1)
				sub(/%/, "", cov)
				print cov
			}
		}')
	if [ -z "$cov" ]; then
		echo "cover: no coverage reported for $pkg" >&2
		exit 1
	fi
	echo "$cov" | awk -v floor="$floor" -v pkg="$pkg" '
		{
			if ($1 + 0 < floor + 0) {
				printf "cover: FAIL: %s at %.1f%%, floor %.1f%%\n", pkg, $1, floor
				exit 1
			}
			printf "cover: PASS: %s at %.1f%% (floor %.1f%%)\n", pkg, $1, floor
		}'
}

check_floor knncost/internal/engine 85.0
check_floor knncost/internal/aknn 85.0
check_floor knncost/internal/shard 78.0
check_floor knncost/internal/wal 80.0
check_floor knncost/internal/optimizer 80.0
check_floor knncost/internal/store 80.0
