#!/bin/sh
# Soak smoke: boot knncostd on a random port, wait for /readyz, fire a burst
# of batch estimates, SIGTERM the daemon mid-traffic, and assert it drains
# and exits 0 within the drain timeout. Exercises the full production
# middleware stack (readiness gate, load shedding, deadlines, graceful
# drain) against a real process, which the in-process tests cannot.
#
# A second phase smokes the warm-restart path: start with -cache-dir,
# register a relation at runtime, stop, restart over the same cache, and
# assert the daemon reaches ready with zero catalog builds (via the
# knncost_catalog_builds expvar) while serving the same estimate.
#
# A third phase smokes the sharded tier: three shard daemons plus a router,
# a relation registered through the router, then a rebalance (router
# restarted over a four-shard peer list) that must heal via a warm restore —
# the new owner serves the relation bit-exact with zero catalog builds.
#
# A fourth phase smokes streaming-ingest crash recovery: stream point
# appends into a live daemon with compaction disabled (so the WAL is the
# mutations' only durable home), kill -9 it mid-ingest, restart over the
# same cache directory, and require the replayed relation to compact into
# estimates bit-identical to a from-scratch registration of its logical
# point dump.
#
# A fifth phase smokes the plan cache end to end: price a two-predicate
# plan twice (the second must report cached:true), stream a mutation into
# one of its relations, wait for the compaction publish, and require the
# re-plan to miss — with the purge visible in the
# knncost_plan_cache_invalidations expvar.
#
# A sixth phase smokes the zero-copy mmap catalog cache at fleet scale:
# KNNCOST_MMAP_RELATIONS relations (default 2000; the recorded DESIGN.md
# numbers use 100000) are built, persisted, and warm-loaded through the
# mmap read path, asserting bit-identical estimates with zero rebuild work
# and reporting restart wall time plus RSS/heap growth.
#
# Usage: soak.sh [all|shard|ingest|plan|mmap]  — `shard` runs only the third
# phase, `ingest` only the fourth, `plan` only the fifth and `mmap` only the
# sixth (the smoke tier of scripts/check.sh uses these).
set -eu

cd "$(dirname "$0")/.."

PHASE="${1:-all}"
case "$PHASE" in
  all|shard|ingest|plan|mmap) ;;
  *) echo "soak: unknown phase $PHASE (want all, shard, ingest, plan, or mmap)"; exit 2 ;;
esac

# Soak must leave the repository untouched — every file it writes goes to
# $TMPDIR. The tree state is captured here and re-checked at the end.
# ISSUE.md and REVIEW.md are working notes that may be locally modified or
# deleted while soaking, so their status is excluded from the comparison.
tree_state() {
  if command -v git >/dev/null 2>&1 && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
    git status --porcelain | grep -v -E '(ISSUE|REVIEW)\.md$' || true
  fi
}
TREE_BEFORE=$(tree_state)

DRAIN=10
TMPDIR="${TMPDIR:-/tmp}"
BIN="$TMPDIR/knncostd-soak-$$"
LOG="$TMPDIR/knncostd-soak-$$.log"
OUT="$TMPDIR/knncostd-soak-$$.out"
CACHE="$TMPDIR/knncostd-soak-$$.cache"
SCACHE="$TMPDIR/knncostd-soak-$$.shardcache"
ICACHE="$TMPDIR/knncostd-soak-$$.ingestcache"
ACKS="$TMPDIR/knncostd-soak-$$.acks"
trap 'rm -rf "$BIN" "$LOG" "$LOG".* "$OUT" "$OUT".* "$CACHE" "$SCACHE" "$ICACHE" "$ACKS"; kill $(jobs -p) 2>/dev/null || true' EXIT

go build -o "$BIN" ./cmd/knncostd

if [ "$PHASE" = all ]; then

"$BIN" -addr 127.0.0.1:0 \
  -relations hotels:3000,restaurants:5000 \
  -capacity 128 -maxk 100 -sample 50 -grid 6 \
  -drain-timeout "${DRAIN}s" -access-log=false \
  >"$OUT" 2>"$LOG" &
PID=$!

# The daemon prints its bound address first thing after listening.
for i in $(seq 1 100); do
  ADDR=$(sed -n 's/^knncostd listening on //p' "$OUT" | head -n1)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "${ADDR:-}" ] || { echo "soak: daemon never printed its address"; kill "$PID" 2>/dev/null; exit 1; }
BASE="http://$ADDR"
echo "soak: daemon pid=$PID addr=$ADDR"

# Liveness must be immediate; readiness flips once catalogs are built.
curl -fsS "$BASE/healthz" >/dev/null || { echo "soak: healthz failed"; kill "$PID"; exit 1; }
for i in $(seq 1 300); do
  if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then READY=1; break; fi
  sleep 0.1
done
[ -n "${READY:-}" ] || { echo "soak: daemon never became ready"; kill "$PID"; exit 1; }
echo "soak: ready"

# Burst through the batch endpoint (and sanity-check one estimate).
BODY='{"relation":"restaurants","queries":[{"x":10,"y":45,"k":20},{"x":-20,"y":30,"k":5},{"x":0,"y":50,"k":60}]}'
for i in $(seq 1 40); do
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" \
    "$BASE/estimate/select/batch" >/dev/null &
done
curl -fsS "$BASE/estimate/select?rel=hotels&x=10&y=45&k=5" | grep -q '"blocks"' \
  || { echo "soak: estimate response malformed"; kill "$PID"; exit 1; }

# SIGTERM mid-burst: the daemon must drain and exit 0 within the timeout.
kill -TERM "$PID"
START=$(date +%s)
EXIT=0
wait "$PID" || EXIT=$?
TOOK=$(( $(date +%s) - START ))
wait 2>/dev/null || true   # reap the curl burst

if [ "$EXIT" -ne 0 ]; then
  echo "soak: daemon exited $EXIT, want 0"; cat "$LOG"; exit 1
fi
if [ "$TOOK" -gt $((DRAIN + 5)) ]; then
  echo "soak: drain took ${TOOK}s, over the ${DRAIN}s timeout"; exit 1
fi
grep -q "drained cleanly" "$LOG" || { echo "soak: no clean-drain log line"; cat "$LOG"; exit 1; }
echo "soak: OK (drained in ${TOOK}s)"

# --- warm-restart smoke ------------------------------------------------------

# start_cached boots the daemon over the shared cache directory and sets
# PID/BASE. The relation schema is deterministic, so a second boot finds
# every catalog in the cache.
start_cached() {
  : >"$OUT"
  "$BIN" -addr 127.0.0.1:0 \
    -relations hotels:3000,restaurants:5000 \
    -capacity 128 -maxk 100 -sample 50 -grid 6 \
    -cache-dir "$CACHE" \
    -drain-timeout "${DRAIN}s" -access-log=false \
    >"$OUT" 2>"$LOG" &
  PID=$!
  for i in $(seq 1 100); do
    ADDR=$(sed -n 's/^knncostd listening on //p' "$OUT" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
  done
  [ -n "${ADDR:-}" ] || { echo "soak: cached daemon never printed its address"; kill "$PID" 2>/dev/null; exit 1; }
  BASE="http://$ADDR"
  for i in $(seq 1 300); do
    if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "soak: cached daemon never became ready"; kill "$PID"; exit 1
}

# wait_relation polls until the named relation reports state "ready".
wait_relation() {
  for i in $(seq 1 300); do
    if curl -fsS "$BASE/relations/$1/status" 2>/dev/null | grep -q '"state":"ready"'; then return 0; fi
    sleep 0.1
  done
  echo "soak: relation $1 never became ready"; kill "$PID"; exit 1
}

# expvar_builds extracts the knncost_catalog_builds counter.
expvar_builds() {
  curl -fsS "$BASE/debug/vars" | sed -n 's/.*"knncost_catalog_builds": *\([0-9][0-9]*\).*/\1/p'
}

PROBE="/estimate/select?rel=restaurants&x=10&y=45&k=20"
# The join probe pins the bounds-only AkNN estimator across the restart:
# its summary artifact must come out of the disk cache bit-identical.
JPROBE="/estimate/join?outer=hotels&inner=restaurants&k=20&technique=aknn-bounds"

start_cached
echo "soak: cold cached daemon pid=$PID addr=$ADDR"
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"name":"runtime","points":[[1,1],[2,5],[3,2],[4,8],[5,3],[6,9],[7,4],[8,7],[9,6],[10,1]]}' \
  "$BASE/relations" >/dev/null || { echo "soak: runtime registration failed"; kill "$PID"; exit 1; }
wait_relation runtime
COLD_BUILDS=$(expvar_builds)
COLD_EST=$(curl -fsS "$BASE$PROBE" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
[ -n "$COLD_EST" ] || { echo "soak: cold estimate malformed"; kill "$PID"; exit 1; }
COLD_JEST=$(curl -fsS "$BASE$JPROBE" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
[ -n "$COLD_JEST" ] || { echo "soak: cold aknn-bounds estimate malformed"; kill "$PID"; exit 1; }
[ "$COLD_BUILDS" -gt 0 ] || { echo "soak: cold run built no catalogs"; kill "$PID"; exit 1; }
kill -TERM "$PID"; wait "$PID" || { echo "soak: cold cached daemon exited dirty"; exit 1; }

start_cached
echo "soak: warm daemon pid=$PID addr=$ADDR"
wait_relation runtime
WARM_BUILDS=$(expvar_builds)
WARM_EST=$(curl -fsS "$BASE$PROBE" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
WARM_JEST=$(curl -fsS "$BASE$JPROBE" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
kill -TERM "$PID"; wait "$PID" || { echo "soak: warm daemon exited dirty"; exit 1; }

if [ "$WARM_BUILDS" != "0" ]; then
  echo "soak: warm restart built $WARM_BUILDS catalogs, want 0"; exit 1
fi
if [ "$WARM_EST" != "$COLD_EST" ]; then
  echo "soak: warm estimate $WARM_EST != cold $COLD_EST"; exit 1
fi
if [ "$WARM_JEST" != "$COLD_JEST" ]; then
  echo "soak: warm aknn-bounds estimate $WARM_JEST != cold $COLD_JEST"; exit 1
fi
echo "soak: warm restart OK (builds=0, estimates identical: $WARM_EST / aknn $WARM_JEST)"

fi # PHASE = all

if [ "$PHASE" = all ] || [ "$PHASE" = shard ]; then

# --- sharded scatter-gather smoke --------------------------------------------

# Three shard daemons over one shared artifact cache, a router in front,
# then a rebalance: the router restarts over a peer list that adds a fresh
# fourth shard. Relation "geo" is chosen because the consistent-hash ring
# makes s4 its new primary (owners move [s1 s2] -> [s4 s1]), so a fresh
# router must hit s4 first, see unknown-relation, and heal by mirroring —
# and the shared cache makes that mirror a warm restore (zero builds on s4).

# start_shard <id>: boot a shard-mode daemon over the shared cache; sets
# ADDR_<id> and PID_<id>.
start_shard() {
  : >"$OUT.$1"
  "$BIN" -addr 127.0.0.1:0 -shard-id "$1" -relations none \
    -capacity 128 -maxk 100 -sample 50 -grid 6 \
    -cache-dir "$SCACHE" -drain-timeout "${DRAIN}s" -access-log=false \
    >"$OUT.$1" 2>"$LOG.$1" &
  eval "PID_$1=$!"
  A=
  for i in $(seq 1 100); do
    A=$(sed -n 's/^knncostd listening on //p' "$OUT.$1" | head -n1)
    [ -n "$A" ] && break
    sleep 0.1
  done
  [ -n "$A" ] || { echo "soak: shard $1 never printed its address"; exit 1; }
  eval "ADDR_$1=$A"
  echo "soak: shard $1 at $A"
}

# start_router <peers>: boot the router over the given peer list; sets
# RBASE and RPID.
start_router() {
  : >"$OUT.r"
  "$BIN" -router -addr 127.0.0.1:0 -peers "$1" -replicas 2 \
    -drain-timeout "${DRAIN}s" -access-log=false \
    >"$OUT.r" 2>"$LOG.r" &
  RPID=$!
  RADDR=
  for i in $(seq 1 100); do
    RADDR=$(sed -n 's/^knncostd router listening on //p' "$OUT.r" | head -n1)
    [ -n "$RADDR" ] && break
    sleep 0.1
  done
  [ -n "$RADDR" ] || { echo "soak: router never printed its address"; cat "$LOG.r"; exit 1; }
  RBASE="http://$RADDR"
  for i in $(seq 1 300); do
    if curl -fsS "$RBASE/readyz" >/dev/null 2>&1; then
      echo "soak: router at $RADDR (peers $1)"; return 0
    fi
    sleep 0.1
  done
  echo "soak: router never became ready"; cat "$LOG.r"; exit 1
}

start_shard s1
start_shard s2
start_shard s3
start_router "s1=http://$ADDR_s1,s2=http://$ADDR_s2,s3=http://$ADDR_s3"

# Register "geo" through the router: a deterministic 400-point spiral, big
# enough that every estimation technique has blocks to count.
GEO_POINTS=$(awk 'BEGIN{
  printf "[";
  for (i = 0; i < 400; i++) {
    a = i * 0.37; r = 1 + i * 0.11;
    printf "%s[%.6f,%.6f]", (i ? "," : ""), r * cos(a), r * sin(a) / 2;
  }
  printf "]";
}')
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"name\":\"geo\",\"points\":$GEO_POINTS}" \
  "$RBASE/relations" >/dev/null || { echo "soak: routed registration failed"; exit 1; }
for i in $(seq 1 300); do
  if curl -fsS "$RBASE/relations/geo/status" 2>/dev/null | grep -q '"state":"ready"'; then break; fi
  sleep 0.1
done
SPROBE="/estimate/select?rel=geo&x=3&y=1&k=25"
EST1=$(curl -fsS "$RBASE$SPROBE" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
[ -n "$EST1" ] || { echo "soak: routed estimate malformed"; exit 1; }
echo "soak: routed estimate blocks=$EST1"

# A second relation gives the router a join pair; the aknn-bounds answer
# must be bit-identical before and after the rebalance below.
GEO2_POINTS=$(awk 'BEGIN{
  printf "[";
  for (i = 0; i < 250; i++) {
    a = i * 0.53; r = 2 + i * 0.13;
    printf "%s[%.6f,%.6f]", (i ? "," : ""), r * cos(a) / 2, r * sin(a);
  }
  printf "]";
}')
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"name\":\"geo2\",\"points\":$GEO2_POINTS}" \
  "$RBASE/relations" >/dev/null || { echo "soak: geo2 routed registration failed"; exit 1; }
for i in $(seq 1 300); do
  if curl -fsS "$RBASE/relations/geo2/status" 2>/dev/null | grep -q '"state":"ready"'; then break; fi
  sleep 0.1
done
SJPROBE="/estimate/join?outer=geo&inner=geo2&k=20&technique=aknn-bounds"
JEST1=$(curl -fsS "$RBASE$SJPROBE" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
[ -n "$JEST1" ] || { echo "soak: routed aknn-bounds estimate malformed"; exit 1; }
echo "soak: routed aknn-bounds estimate blocks=$JEST1"

# Rebalance: bring up a fresh shard and restart the router over the
# four-shard peer list. The first routed estimate after the restart lands
# on s4 (the new ring primary for geo), which must self-heal via a warm
# restore from the shared cache.
kill -TERM "$RPID"; wait "$RPID" || { echo "soak: router exited dirty on rebalance"; exit 1; }
start_shard s4
start_router "s1=http://$ADDR_s1,s2=http://$ADDR_s2,s3=http://$ADDR_s3,s4=http://$ADDR_s4"

EST2=$(curl -fsS "$RBASE$SPROBE" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
if [ "$EST2" != "$EST1" ]; then
  echo "soak: post-rebalance estimate $EST2 != pre-rebalance $EST1"; exit 1
fi
JEST2=$(curl -fsS "$RBASE$SJPROBE" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
if [ "$JEST2" != "$JEST1" ]; then
  echo "soak: post-rebalance aknn-bounds estimate $JEST2 != pre-rebalance $JEST1"; exit 1
fi

RESTORES=$(curl -fsS "$RBASE/debug/vars" | sed -n 's/.*"knnrouter_rebalance_restores": *\([0-9][0-9]*\).*/\1/p')
[ "${RESTORES:-0}" -gt 0 ] || { echo "soak: no rebalance warm restore counted (restores=${RESTORES:-unset})"; exit 1; }
S4_BUILDS=$(curl -fsS "http://$ADDR_s4/debug/vars" | sed -n 's/.*"knncost_catalog_builds": *\([0-9][0-9]*\).*/\1/p')
if [ "$S4_BUILDS" != "0" ]; then
  echo "soak: rebalance restore built $S4_BUILDS catalogs on s4, want 0 (warm restore)"; exit 1
fi
echo "soak: rebalance OK (restores=$RESTORES, s4 builds=0, estimates identical: $EST2 / aknn $JEST2)"

# Drain everything cleanly.
kill -TERM "$RPID"; wait "$RPID" || { echo "soak: router exited dirty"; exit 1; }
for id in s1 s2 s3 s4; do
  eval "P=\$PID_$id"
  kill -TERM "$P"; wait "$P" || { echo "soak: shard $id exited dirty"; cat "$LOG.$id"; exit 1; }
done
echo "soak: sharded tier OK"

fi # PHASE = all|shard

if [ "$PHASE" = all ] || [ "$PHASE" = ingest ]; then

# --- streaming-ingest crash-recovery smoke -----------------------------------

# Boot with compaction disabled so every acked mutation lives only in the
# write-ahead log — the kill -9 then leaves the WAL as the sole witness.
start_ingest() {
  : >"$OUT.i"
  # shellcheck disable=SC2086
  "$BIN" -addr 127.0.0.1:0 -relations none \
    -capacity 128 -maxk 100 -sample 50 -grid 6 \
    -cache-dir "$ICACHE" -drain-timeout "${DRAIN}s" -access-log=false \
    $1 >"$OUT.i" 2>"$LOG.i" &
  IPID=$!
  IADDR=
  for i in $(seq 1 100); do
    IADDR=$(sed -n 's/^knncostd listening on //p' "$OUT.i" | head -n1)
    [ -n "$IADDR" ] && break
    sleep 0.1
  done
  [ -n "$IADDR" ] || { echo "soak: ingest daemon never printed its address"; cat "$LOG.i"; exit 1; }
  IBASE="http://$IADDR"
  for i in $(seq 1 300); do
    if curl -fsS "$IBASE/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "soak: ingest daemon never became ready"; cat "$LOG.i"; exit 1
}

wait_feed() {
  for i in $(seq 1 300); do
    if curl -fsS "$IBASE/relations/$1/status" 2>/dev/null | grep -q '"state":"ready"'; then return 0; fi
    sleep 0.1
  done
  echo "soak: relation $1 never became ready on the ingest daemon"; exit 1
}

start_ingest "-compact-threshold 1000000 -compact-interval=-1s"
echo "soak: ingest daemon pid=$IPID addr=$IADDR"

FEED_POINTS=$(awk 'BEGIN{
  printf "[";
  for (i = 0; i < 300; i++) {
    a = i * 0.41; r = 1 + i * 0.09;
    printf "%s[%.6f,%.6f]", (i ? "," : ""), r * cos(a), r * sin(a) / 2;
  }
  printf "]";
}')
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"name\":\"feed\",\"points\":$FEED_POINTS}" \
  "$IBASE/relations" >/dev/null || { echo "soak: feed registration failed"; exit 1; }
wait_feed feed

# Stream appends from the background; each acked batch is WAL-durable by the
# time curl returns, so everything counted in $ACKS must survive the crash.
: >"$ACKS"
(
  n=0
  while curl -fsS -X POST -H 'Content-Type: application/json' \
      -d "{\"points\":[[$n.25,3.5],[$n.75,7.25]]}" \
      "$IBASE/relations/feed/points" >/dev/null 2>&1; do
    n=$((n + 1))
    echo "$n" >"$ACKS"
  done
) &
APID=$!

for i in $(seq 1 300); do
  [ -s "$ACKS" ] && [ "$(cat "$ACKS")" -ge 5 ] && break
  sleep 0.1
done
ACKED=$(cat "$ACKS" 2>/dev/null || echo 0)
[ "$ACKED" -ge 5 ] || { echo "soak: only $ACKED appends acked before timeout"; exit 1; }

# The crash: no drain, no fsync courtesy — the process dies mid-ingest.
kill -9 "$IPID"
wait "$IPID" 2>/dev/null || true
wait "$APID" 2>/dev/null || true
echo "soak: killed -9 after $ACKED acked appends"

# Restart over the same cache with compaction enabled: the WAL must replay
# every acked mutation and the compactor must fold them in.
start_ingest "-compact-threshold 5 -compact-interval 50ms"
echo "soak: recovery daemon pid=$IPID addr=$IADDR"
wait_feed feed

REPLAYED=$(curl -fsS "$IBASE/debug/vars" | sed -n 's/.*"knncost_wal_replayed": *\([0-9][0-9]*\).*/\1/p')
[ "${REPLAYED:-0}" -ge "$ACKED" ] || { echo "soak: replayed ${REPLAYED:-0} WAL records, acked $ACKED"; exit 1; }

# Wait for the replayed deltas to drain into the snapshot (delta_ops is
# omitted from the status once zero).
for i in $(seq 1 300); do
  if ! curl -fsS "$IBASE/relations/feed/status" | grep -q '"delta_ops"'; then DRAINED=1; break; fi
  sleep 0.1
done
[ -n "${DRAINED:-}" ] || { echo "soak: replayed deltas never compacted"; exit 1; }
COMPACTIONS=$(curl -fsS "$IBASE/debug/vars" | sed -n 's/.*"knncost_compactions": *\([0-9][0-9]*\).*/\1/p')
[ "${COMPACTIONS:-0}" -ge 1 ] || { echo "soak: no compaction counted after replay"; exit 1; }

# Bit-exact convergence: re-register the recovered logical point sequence
# from scratch and require identical estimates on every probe.
curl -fsS "$IBASE/relations/feed/points" \
  | sed 's/"name":"feed"/"name":"scratch"/' \
  | curl -fsS -X POST -H 'Content-Type: application/json' -d @- "$IBASE/relations" >/dev/null \
  || { echo "soak: scratch re-registration failed"; exit 1; }
wait_feed scratch
for Q in "x=3&y=1&k=25" "x=-5&y=2&k=7" "x=12.5&y=-4&k=60"; do
  FEED_EST=$(curl -fsS "$IBASE/estimate/select?rel=feed&$Q" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
  SCRATCH_EST=$(curl -fsS "$IBASE/estimate/select?rel=scratch&$Q" | sed -n 's/.*"blocks":\([0-9.e+-]*\).*/\1/p')
  [ -n "$FEED_EST" ] || { echo "soak: recovered estimate malformed for $Q"; exit 1; }
  if [ "$FEED_EST" != "$SCRATCH_EST" ]; then
    echo "soak: recovery not bit-exact for $Q: feed $FEED_EST != scratch $SCRATCH_EST"; exit 1
  fi
done
echo "soak: crash recovery OK (replayed=$REPLAYED, compactions=$COMPACTIONS, estimates identical)"

kill -TERM "$IPID"; wait "$IPID" || { echo "soak: recovery daemon exited dirty"; cat "$LOG.i"; exit 1; }
echo "soak: ingest tier OK"

fi # PHASE = all|ingest

if [ "$PHASE" = all ] || [ "$PHASE" = plan ]; then

# --- plan-cache smoke --------------------------------------------------------

# Fast compaction so the mutation's publish (and the cache purge it fires)
# lands within the polling window.
: >"$OUT.p"
"$BIN" -addr 127.0.0.1:0 \
  -relations hotels:3000,restaurants:5000 \
  -capacity 128 -maxk 100 -sample 50 -grid 6 \
  -compact-threshold 1 -compact-interval 50ms \
  -drain-timeout "${DRAIN}s" -access-log=false \
  >"$OUT.p" 2>"$LOG.p" &
PPID_=$!
PADDR=
for i in $(seq 1 100); do
  PADDR=$(sed -n 's/^knncostd listening on //p' "$OUT.p" | head -n1)
  [ -n "$PADDR" ] && break
  sleep 0.1
done
[ -n "$PADDR" ] || { echo "soak: plan daemon never printed its address"; cat "$LOG.p"; exit 1; }
PBASE="http://$PADDR"
for i in $(seq 1 300); do
  if curl -fsS "$PBASE/readyz" >/dev/null 2>&1; then PREADY=1; break; fi
  sleep 0.1
done
[ -n "${PREADY:-}" ] || { echo "soak: plan daemon never became ready"; cat "$LOG.p"; exit 1; }
echo "soak: plan daemon pid=$PPID_ addr=$PADDR"

PLAN_BODY='{"selects":[{"relation":"hotels","x":10,"y":45,"k":8},{"relation":"restaurants","x":10,"y":45,"k":20}],"filter_selectivity":0.5}'
plan_cached() {
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$PLAN_BODY" \
    "$PBASE/plan" | sed -n 's/.*"cached":\(true\|false\).*/\1/p'
}
plan_invalidations() {
  curl -fsS "$PBASE/debug/vars" | sed -n 's/.*"knncost_plan_cache_invalidations": *\([0-9][0-9]*\).*/\1/p'
}

COLD=$(plan_cached)
[ "$COLD" = "false" ] || { echo "soak: first plan reported cached=$COLD, want false"; exit 1; }
WARM=$(plan_cached)
[ "$WARM" = "true" ] || { echo "soak: second plan reported cached=$WARM, want true"; exit 1; }
echo "soak: plan cached on second request"

# Mutate hotels; the compaction publish must purge every plan that
# references it.
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"points":[[1,1],[2,5],[3,2]]}' \
  "$PBASE/relations/hotels/points" >/dev/null \
  || { echo "soak: plan-phase mutation failed"; exit 1; }
INVAL=
for i in $(seq 1 300); do
  INVAL=$(plan_invalidations)
  [ "${INVAL:-0}" -ge 1 ] && break
  sleep 0.1
done
[ "${INVAL:-0}" -ge 1 ] || { echo "soak: no plan-cache invalidation after mutation (expvar=${INVAL:-unset})"; exit 1; }

REPLAN=$(plan_cached)
[ "$REPLAN" = "false" ] || { echo "soak: plan after mutation reported cached=$REPLAN, want false (stale cache)"; exit 1; }
echo "soak: plan cache OK (invalidations=$INVAL, re-plan missed)"

kill -TERM "$PPID_"; wait "$PPID_" || { echo "soak: plan daemon exited dirty"; cat "$LOG.p"; exit 1; }
echo "soak: plan tier OK"

fi # PHASE = all|plan

if [ "$PHASE" = all ] || [ "$PHASE" = mmap ]; then

# --- mmap catalog-cache scale smoke ------------------------------------------

# The scale measurement lives in a Go test (it needs in-process RSS/heap
# probes); the soak phase drives it at fleet scale and requires the verbose
# log to show the warm-load numbers. 100k relations need ~200k VMA slots —
# past the default vm.max_map_count the loaders degrade to heap copies, so
# the smoke default stays under the kernel limit.
MMAP_N="${KNNCOST_MMAP_RELATIONS:-2000}"
MMAP_OUT="$TMPDIR/knncostd-soak-$$.mmap"
if KNNCOST_MMAP_RELATIONS="$MMAP_N" go test -run TestMmapCatalogScale -v -timeout 1800s \
    ./internal/store/ >"$MMAP_OUT" 2>&1; then
  grep -E "relations=|rss:" "$MMAP_OUT" | sed 's/^ *[^ ]* /soak: mmap /'
else
  echo "soak: mmap scale test failed:"; cat "$MMAP_OUT"; rm -f "$MMAP_OUT"; exit 1
fi
rm -f "$MMAP_OUT"
echo "soak: mmap tier OK ($MMAP_N relations)"

fi # PHASE = all|mmap

# --- clean-tree check --------------------------------------------------------

TREE_AFTER=$(tree_state)
if [ "$TREE_BEFORE" != "$TREE_AFTER" ]; then
  echo "soak: repository tree changed during soak:"
  echo "--- before:"; echo "$TREE_BEFORE"
  echo "--- after:"; echo "$TREE_AFTER"
  exit 1
fi
echo "soak: clean tree OK"
