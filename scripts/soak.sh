#!/bin/sh
# Soak smoke: boot knncostd on a random port, wait for /readyz, fire a burst
# of batch estimates, SIGTERM the daemon mid-traffic, and assert it drains
# and exits 0 within the drain timeout. Exercises the full production
# middleware stack (readiness gate, load shedding, deadlines, graceful
# drain) against a real process, which the in-process tests cannot.
set -eu

cd "$(dirname "$0")/.."

DRAIN=10
TMPDIR="${TMPDIR:-/tmp}"
BIN="$TMPDIR/knncostd-soak-$$"
LOG="$TMPDIR/knncostd-soak-$$.log"
OUT="$TMPDIR/knncostd-soak-$$.out"
trap 'rm -f "$BIN" "$LOG" "$OUT"' EXIT

go build -o "$BIN" ./cmd/knncostd

"$BIN" -addr 127.0.0.1:0 \
  -relations hotels:3000,restaurants:5000 \
  -capacity 128 -maxk 100 -sample 50 -grid 6 \
  -drain-timeout "${DRAIN}s" -access-log=false \
  >"$OUT" 2>"$LOG" &
PID=$!

# The daemon prints its bound address first thing after listening.
for i in $(seq 1 100); do
  ADDR=$(sed -n 's/^knncostd listening on //p' "$OUT" | head -n1)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "${ADDR:-}" ] || { echo "soak: daemon never printed its address"; kill "$PID" 2>/dev/null; exit 1; }
BASE="http://$ADDR"
echo "soak: daemon pid=$PID addr=$ADDR"

# Liveness must be immediate; readiness flips once catalogs are built.
curl -fsS "$BASE/healthz" >/dev/null || { echo "soak: healthz failed"; kill "$PID"; exit 1; }
for i in $(seq 1 300); do
  if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then READY=1; break; fi
  sleep 0.1
done
[ -n "${READY:-}" ] || { echo "soak: daemon never became ready"; kill "$PID"; exit 1; }
echo "soak: ready"

# Burst through the batch endpoint (and sanity-check one estimate).
BODY='{"relation":"restaurants","queries":[{"x":10,"y":45,"k":20},{"x":-20,"y":30,"k":5},{"x":0,"y":50,"k":60}]}'
for i in $(seq 1 40); do
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" \
    "$BASE/estimate/select/batch" >/dev/null &
done
curl -fsS "$BASE/estimate/select?rel=hotels&x=10&y=45&k=5" | grep -q '"blocks"' \
  || { echo "soak: estimate response malformed"; kill "$PID"; exit 1; }

# SIGTERM mid-burst: the daemon must drain and exit 0 within the timeout.
kill -TERM "$PID"
START=$(date +%s)
EXIT=0
wait "$PID" || EXIT=$?
TOOK=$(( $(date +%s) - START ))
wait 2>/dev/null || true   # reap the curl burst

if [ "$EXIT" -ne 0 ]; then
  echo "soak: daemon exited $EXIT, want 0"; cat "$LOG"; exit 1
fi
if [ "$TOOK" -gt $((DRAIN + 5)) ]; then
  echo "soak: drain took ${TOOK}s, over the ${DRAIN}s timeout"; exit 1
fi
grep -q "drained cleanly" "$LOG" || { echo "soak: no clean-drain log line"; cat "$LOG"; exit 1; }
echo "soak: OK (drained in ${TOOK}s)"
