#!/bin/sh
# Repository gate: vet, full tests, race tests on the concurrent packages,
# and a 1-iteration benchmark smoke. Equivalent to `make check`; kept as a
# script for environments without make.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go test ./...
go test -race ./internal/core/... ./internal/store/... ./internal/service/... ./internal/faultinject/... ./cmd/knncostd/...
go test -run xxx -bench 'BenchmarkEstimateSelectHot|BenchmarkStaircaseBuildAlloc|BenchmarkFig13SelectPreprocessCC' -benchtime 1x .
