#!/bin/sh
# Repository gate: vet, pinned static analysis, full tests, race tests on
# the concurrent packages, a 1-iteration benchmark smoke, the coverage
# floor, the estimator-accuracy regression gate, and a short fuzz smoke of
# the oracle differential targets. Equivalent to `make check`; kept as a
# script for environments without make.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
sh scripts/lint.sh
go test ./...
go test -race ./internal/core/... ./internal/engine/... ./internal/aknn/... ./internal/wal/... ./internal/store/... ./internal/optimizer/... ./internal/service/... ./internal/faultinject/... ./internal/oracle/... ./internal/shard/... ./cmd/knncostd/...
go test -run xxx -bench 'BenchmarkEstimateSelectHot|BenchmarkStaircaseBuildAlloc|BenchmarkFig13SelectPreprocessCC' -benchtime 1x .

# Coverage floors: per-package statement coverage, internal/engine >= 85%,
# internal/aknn >= 85%, internal/shard >= 78%, internal/wal >= 80%,
# internal/optimizer >= 80%.
sh scripts/cover.sh

# Sharded-tier smoke: three shard daemons + router, a routed registration,
# and a rebalance that must heal via a zero-build warm restore.
sh scripts/soak.sh shard

# Crash-recovery smoke: stream appends into a live daemon, kill -9 it
# mid-ingest, restart over the same cache, and require the WAL replay to
# converge bit-exact with a from-scratch registration of the same points.
sh scripts/soak.sh ingest

# Plan-cache smoke: plan a multi-predicate query twice (the second must hit
# the cache), mutate a referenced relation, and require the re-plan to miss
# with the invalidation visible in the expvars.
sh scripts/soak.sh plan

# Mmap catalog-cache smoke: warm-load a 2000-relation fleet through the
# zero-copy read path and require bit-identical estimates with zero builds.
sh scripts/soak.sh mmap

# Estimator-accuracy gate: exact invariants must hold and q-error quantiles
# must stay within 10% of the checked-in golden baseline.
go run ./cmd/knnbench -accuracy -baseline results/ACCURACY_BASELINE.json

# Fuzz smoke: the seed corpus runs on plain `go test`; this additionally
# explores new inputs for a couple of seconds per target.
go test -run xxx -fuzz FuzzEstimateSelect -fuzztime 2s ./internal/oracle/
go test -run xxx -fuzz FuzzJoinCost -fuzztime 2s ./internal/oracle/
go test -run xxx -fuzz 'FuzzAknnJoin$' -fuzztime 2s ./internal/aknn/
go test -run xxx -fuzz FuzzAknnBoundsEstimate -fuzztime 2s ./internal/aknn/
go test -run xxx -fuzz FuzzLoadAknnSummary -fuzztime 2s ./internal/aknn/
