package knncost

import "math/rand"

// newRand returns a deterministic source for the generator helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
