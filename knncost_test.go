package knncost_test

import (
	"math"
	"testing"

	"knncost"
)

func TestFacadeEndToEndSelect(t *testing.T) {
	pts := knncost.GenerateOSMLike(20000, 1)
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 128})
	if ix.NumPoints() != 20000 {
		t.Fatalf("NumPoints = %d", ix.NumPoints())
	}
	q := pts[123]
	neighbors, stats := ix.SelectKNNStats(q, 10)
	if len(neighbors) != 10 {
		t.Fatalf("got %d neighbors", len(neighbors))
	}
	if neighbors[0].Dist != 0 {
		t.Errorf("query point is in the dataset; nearest distance should be 0, got %g", neighbors[0].Dist)
	}
	for i := 1; i < len(neighbors); i++ {
		if neighbors[i].Dist < neighbors[i-1].Dist {
			t.Fatal("neighbors not sorted by distance")
		}
	}
	if stats.BlocksScanned < 1 {
		t.Error("select must scan at least one block")
	}
	if got := ix.SelectKNNCost(q, 10); got != stats.BlocksScanned {
		t.Errorf("SelectKNNCost %d != stats %d", got, stats.BlocksScanned)
	}
}

func TestFacadeBrowser(t *testing.T) {
	pts := knncost.GenerateUniform(1000, 2, knncost.NewRect(0, 0, 10, 10))
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 32})
	b := ix.Browse(knncost.Point{X: 5, Y: 5})
	last := -1.0
	for i := 0; i < 50; i++ {
		n, ok := b.Next()
		if !ok {
			t.Fatal("browser exhausted early")
		}
		if n.Dist < last {
			t.Fatal("browser distances not monotone")
		}
		last = n.Dist
	}
}

func TestFacadeEstimators(t *testing.T) {
	pts := knncost.GenerateOSMLike(30000, 3)
	// Capacity 64 keeps typical costs above a handful of blocks at the
	// tested k range, where the error ratio is meaningful.
	ix := knncost.BuildQuadtreeIndex(pts, knncost.IndexOptions{Capacity: 64})

	stair, err := knncost.NewStaircaseEstimator(ix, knncost.StaircaseOptions{MaxK: 200})
	if err != nil {
		t.Fatal(err)
	}
	density := knncost.NewDensityEstimator(ix)

	// Keep k large enough that actual costs exceed a handful of blocks:
	// at 1-2 block costs a ±1 block absolute error dominates the ratio
	// (see EXPERIMENTS.md).
	var stairErr, densErr float64
	n := 50
	for i := 0; i < n; i++ {
		q := pts[i*37]
		k := 100 + (i*13)%100
		actual := float64(ix.SelectKNNCost(q, k))
		se, err := stair.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		de, err := density.EstimateSelect(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if actual > 0 {
			stairErr += math.Abs(se-actual) / actual
			densErr += math.Abs(de-actual) / actual
		}
	}
	t.Logf("avg error: staircase %.3f, density %.3f", stairErr/float64(n), densErr/float64(n))
	if stairErr/float64(n) > 0.5 {
		t.Errorf("staircase average error %.3f too high", stairErr/float64(n))
	}
}

func TestFacadeJoin(t *testing.T) {
	hotels := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(5000, 4), knncost.IndexOptions{Capacity: 128})
	restaurants := knncost.BuildQuadtreeIndex(
		knncost.GenerateOSMLike(8000, 5), knncost.IndexOptions{Capacity: 128})

	k := 3
	actual := float64(knncost.JoinKNNCost(hotels, restaurants, k))
	if actual <= 0 {
		t.Fatal("join cost must be positive")
	}

	pairs := 0
	stats := knncost.JoinKNN(hotels, restaurants, k, func(knncost.JoinPair) { pairs++ })
	if pairs != hotels.NumPoints()*k {
		t.Errorf("join emitted %d pairs, want %d", pairs, hotels.NumPoints()*k)
	}
	if float64(stats.BlocksScanned) != actual {
		t.Errorf("join stats %d != predicted ground truth %g", stats.BlocksScanned, actual)
	}

	bs := knncost.NewBlockSampleEstimator(hotels, restaurants, 0)
	est, err := bs.EstimateJoin(k)
	if err != nil {
		t.Fatal(err)
	}
	if est != actual {
		t.Errorf("full block-sample estimate %g != actual %g", est, actual)
	}

	cm, err := knncost.NewCatalogMergeEstimator(hotels, restaurants, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	est, err = cm.EstimateJoin(k)
	if err != nil {
		t.Fatal(err)
	}
	if est != actual {
		t.Errorf("full catalog-merge estimate %g != actual %g", est, actual)
	}

	vg, err := knncost.NewVirtualGridEstimator(restaurants, 8, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	est, err = vg.EstimateJoin(hotels, k)
	if err != nil {
		t.Fatal(err)
	}
	if r := math.Abs(est-actual) / actual; r > 0.6 {
		t.Errorf("virtual-grid error ratio %.3f too high (est %g, actual %g)", r, est, actual)
	}
	bound := vg.Bind(hotels)
	b, err := bound.EstimateJoin(k)
	if err != nil {
		t.Fatal(err)
	}
	if b != est {
		t.Errorf("bound estimate %g != direct %g", b, est)
	}
}

func TestFacadeRTreeAndGrid(t *testing.T) {
	pts := knncost.GenerateOSMLike(5000, 6)
	rt, err := knncost.BuildRTreeIndex(pts, knncost.IndexOptions{Capacity: 128, Fanout: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := knncost.BuildGridIndex(pts, 12, 12, knncost.WorldBounds())
	q := pts[42]
	a := rt.SelectKNN(q, 5)
	b := g.SelectKNN(q, 5)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("R-tree returned %d, grid %d", len(a), len(b))
	}
	for i := range a {
		if diff := a[i].Dist - b[i].Dist; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("neighbor %d: R-tree dist %g, grid dist %g", i, a[i].Dist, b[i].Dist)
		}
	}
	// Staircase over an R-tree builds an auxiliary quadtree transparently.
	if _, err := knncost.NewStaircaseEstimator(rt, knncost.StaircaseOptions{MaxK: 50}); err != nil {
		t.Fatalf("staircase over R-tree: %v", err)
	}
}
