package knncost

import (
	"io"

	"knncost/internal/aknn"
	"knncost/internal/core"
	"knncost/internal/datagen"
	"knncost/internal/knnjoin"
)

// SelectEstimator predicts the block-scan cost of a k-NN-Select at a query
// point.
type SelectEstimator = core.SelectEstimator

// JoinEstimator predicts the total block-scan cost of a k-NN-Join whose
// relations were fixed at construction time.
type JoinEstimator = core.JoinEstimator

// StaircaseMode selects a staircase variant.
type StaircaseMode = core.StaircaseMode

// Staircase estimation variants (§3 of the paper, compared in Figure 11).
const (
	// ModeCenterCorners interpolates between the block-center and
	// block-corner catalogs (Equations 1–2): best accuracy, two lookups.
	ModeCenterCorners = core.ModeCenterCorners
	// ModeCenterOnly uses only the block-center catalog: one lookup,
	// slightly lower accuracy, half the storage.
	ModeCenterOnly = core.ModeCenterOnly
	// ModeCenterQuadrant (an extension beyond the paper) keeps the four
	// corner catalogs separate and interpolates toward the corner of the
	// query's quadrant: the most accurate variant, at 2.5x the storage of
	// ModeCenterCorners. See the `ablation` experiment in EXPERIMENTS.md.
	ModeCenterQuadrant = core.ModeCenterQuadrant
)

// StaircaseOptions configure NewStaircaseEstimator; the zero value uses
// ModeCenterCorners with the default MaxK.
type StaircaseOptions = core.StaircaseOptions

// StaircaseEstimator answers k-NN-Select cost queries from precomputed
// per-block interval catalogs in O(1) lookups.
type StaircaseEstimator = core.Staircase

// NewStaircaseEstimator precomputes the staircase catalogs for ix. When ix
// is an R-tree, a quadtree auxiliary index is built automatically (§3.3 of
// the paper). Queries with k beyond options.MaxK fall back to the
// density-based technique.
func NewStaircaseEstimator(ix *Index, opt StaircaseOptions) (*StaircaseEstimator, error) {
	return core.BuildStaircase(ix.tree, opt)
}

// SelectQuery is one k-NN-Select cost question in a batch.
type SelectQuery = core.SelectQuery

// SelectResult is the answer to one SelectQuery; a failed query carries its
// own Err without affecting the rest of the batch.
type SelectResult = core.SelectResult

// EstimateSelectBatch answers queries[i] into result[i] with a worker
// fan-out over est (parallelism 0 means GOMAXPROCS, 1 forces serial).
// Every estimator in this package is read-only after construction and safe
// for this concurrent use; results are identical to sequential
// EstimateSelect calls regardless of parallelism. StaircaseEstimator also
// exposes this as its EstimateSelectBatch method.
func EstimateSelectBatch(est SelectEstimator, queries []SelectQuery, parallelism int) []SelectResult {
	return core.EstimateSelectBatch(est, queries, parallelism)
}

// DensityEstimator is the density-based baseline of Tao et al. (paper ref
// [24]): no precomputation, but every estimate walks the Count-Index.
type DensityEstimator = core.DensityBased

// NewDensityEstimator creates the density-based estimator over ix's
// Count-Index.
func NewDensityEstimator(ix *Index) *DensityEstimator {
	return core.NewDensityBased(ix.count)
}

// JoinPair is one k-NN-Join result tuple.
type JoinPair = knnjoin.Pair

// JoinStats reports the work a k-NN-Join performed; BlocksScanned is the
// cost the join estimators predict.
type JoinStats = knnjoin.Stats

// JoinKNN evaluates (outer ⋉_knn inner) with the locality-based
// block-by-block algorithm (paper ref [22]), invoking emit for every result
// pair.
func JoinKNN(outer, inner *Index, k int, emit func(JoinPair)) JoinStats {
	return knnjoin.Join(outer.tree, inner.tree, k, emit)
}

// JoinKNNCost returns the true block-scan cost of (outer ⋉_knn inner)
// under locality-based processing, computed from counts alone.
func JoinKNNCost(outer, inner *Index, k int) int {
	return knnjoin.Cost(outer.count, inner.count, k)
}

// AknnPair is one result tuple of the bounds-only AkNN join.
type AknnPair = aknn.Pair

// AknnStats reports the work the bounds-only AkNN join performed;
// PointsScanned is the cost the aknn-bounds estimator predicts.
type AknnStats = aknn.Stats

// JoinAkNN evaluates (outer ⋉_aknn inner) exactly with the bounds-only
// pruning test (internal/aknn, after Winecki) — a different evaluation
// strategy than JoinKNN's locality-based join, with a different cost
// model. emit is invoked for every result pair, grouped by outer point.
func JoinAkNN(outer, inner *Index, k int, emit func(AknnPair)) AknnStats {
	return aknn.Join(outer.tree, inner.tree, k, emit)
}

// JoinAkNNCost returns the true cost of (outer ⋉_aknn inner) under
// bounds-only processing — candidate inner points scanned — computed from
// partition bounds and counts alone.
func JoinAkNNCost(outer, inner *Index, k int) int {
	return aknn.Cost(outer.count, inner.count, k)
}

// AknnSummary is the per-inner-relation artifact of the aknn-bounds join
// technique: partition bounds and counts, everything its estimator needs.
type AknnSummary = aknn.Summary

// NewAknnSummary summarizes inner for the bounds-only AkNN cost model.
func NewAknnSummary(inner *Index) *AknnSummary {
	return aknn.BuildSummary(inner.count)
}

// NewAknnBoundsEstimator creates the aknn-bounds join estimator for
// (outer ⋉_aknn inner); sampleSize <= 0 uses every outer block (exact:
// the estimate equals JoinAkNNCost).
func NewAknnBoundsEstimator(outer, inner *Index, sampleSize int) JoinEstimator {
	return aknn.BuildSummary(inner.count).Bind(outer.count, sampleSize)
}

// LoadAknnSummary reloads a summary previously saved with its WriteTo
// method. It is standalone: no index is required.
func LoadAknnSummary(r io.Reader) (*AknnSummary, error) {
	return aknn.LoadSummary(r)
}

// BlockSampleEstimator is the sampling-at-query-time join estimator (§4.1).
type BlockSampleEstimator = core.BlockSample

// NewBlockSampleEstimator creates a Block-Sample estimator for
// (outer ⋉_knn inner) with the given sample size; sampleSize <= 0 uses
// every outer block (exact, slowest).
func NewBlockSampleEstimator(outer, inner *Index, sampleSize int) *BlockSampleEstimator {
	return core.NewBlockSample(outer.count, inner.count, sampleSize)
}

// CatalogMergeEstimator is the precomputed-catalog join estimator (§4.2):
// one merged catalog per (outer, inner) pair, estimation by a single
// lookup.
type CatalogMergeEstimator = core.CatalogMerge

// NewCatalogMergeEstimator precomputes the merged locality catalog for
// (outer ⋉_knn inner). sampleSize <= 0 uses every outer block; maxK <= 0
// uses the default.
func NewCatalogMergeEstimator(outer, inner *Index, sampleSize, maxK int) (*CatalogMergeEstimator, error) {
	return core.BuildCatalogMerge(outer.count, inner.count, sampleSize, maxK)
}

// VirtualGridEstimator is the linear-storage join estimator (§4.3): built
// once per inner relation, it estimates the join cost against any outer
// relation.
type VirtualGridEstimator struct {
	vg *core.VirtualGrid
}

// NewVirtualGridEstimator precomputes per-cell locality catalogs for inner
// over an nx × ny virtual grid. maxK <= 0 uses the default.
func NewVirtualGridEstimator(inner *Index, nx, ny, maxK int) (*VirtualGridEstimator, error) {
	vg, err := core.BuildVirtualGrid(inner.count, nx, ny, maxK)
	if err != nil {
		return nil, err
	}
	return &VirtualGridEstimator{vg: vg}, nil
}

// EstimateJoin predicts the cost of (outer ⋉_knn inner) for the inner
// relation this estimator was built over.
func (v *VirtualGridEstimator) EstimateJoin(outer *Index, k int) (float64, error) {
	return v.vg.EstimateJoin(outer.count, k)
}

// Bind fixes an outer relation, yielding a JoinEstimator for the pair.
func (v *VirtualGridEstimator) Bind(outer *Index) JoinEstimator {
	return v.vg.Bind(outer.count)
}

// StorageBytes returns the serialized size of the per-cell catalogs.
func (v *VirtualGridEstimator) StorageBytes() int { return v.vg.StorageBytes() }

// MaxK returns the largest maintained k.
func (v *VirtualGridEstimator) MaxK() int { return v.vg.MaxK() }

// WriteTo serializes the estimator so it can be reloaded with
// LoadVirtualGridEstimator without rebuilding.
func (v *VirtualGridEstimator) WriteTo(w io.Writer) (int64, error) { return v.vg.WriteTo(w) }

// LoadStaircaseEstimator reloads a staircase estimator previously saved
// with its WriteTo method. ix must be the same index the estimator was
// built on (a fingerprint in the file is checked); opt supplies only the
// fallback and, for R-tree indexes, the auxiliary capacity.
func LoadStaircaseEstimator(ix *Index, r io.Reader, opt StaircaseOptions) (*StaircaseEstimator, error) {
	return core.LoadStaircase(ix.tree, r, opt)
}

// LoadCatalogMergeEstimator reloads a Catalog-Merge estimator previously
// saved with its WriteTo method. It is standalone: no index is required.
func LoadCatalogMergeEstimator(r io.Reader) (*CatalogMergeEstimator, error) {
	return core.LoadCatalogMerge(r)
}

// LoadVirtualGridEstimator reloads a Virtual-Grid estimator previously
// saved with WriteTo. It is standalone: estimation needs only the outer
// relation passed to EstimateJoin.
func LoadVirtualGridEstimator(r io.Reader) (*VirtualGridEstimator, error) {
	vg, err := core.LoadVirtualGrid(r)
	if err != nil {
		return nil, err
	}
	return &VirtualGridEstimator{vg: vg}, nil
}

// GenerateOSMLike returns n deterministic points with OpenStreetMap-like
// spatial skew (urban clusters, road traces, sparse background) inside
// WorldBounds — the repository's stand-in for the paper's OSM GPS dataset.
func GenerateOSMLike(n int, seed int64) []Point {
	return datagen.OSMLike(n, seed)
}

// GenerateUniform returns n deterministic uniformly distributed points
// inside bounds.
func GenerateUniform(n int, seed int64, bounds Rect) []Point {
	return datagen.Uniform{Bounds: bounds}.Generate(n, newRand(seed))
}

// WorldBounds is the longitude/latitude-like frame of GenerateOSMLike.
func WorldBounds() Rect { return datagen.WorldBounds }
