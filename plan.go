package knncost

import (
	"knncost/internal/geom"
	"knncost/internal/planner"
)

// Relation is a named, indexed dataset registered with the cost-based
// planner.
type Relation = planner.Relation

// NewRelation wraps an index as a planner relation. est predicts the
// relation's k-NN-Select costs; nil attaches a density-based estimator
// (build a StaircaseEstimator for serious use).
func NewRelation(name string, ix *Index, est SelectEstimator) *Relation {
	return planner.NewRelation(name, ix.tree, est)
}

// Filter is a tuple predicate with its estimated selectivity, used by
// PlanKNNSelect to weigh filter-first against incremental plans.
type Filter = planner.Filter

// Plan is one candidate query-execution plan with its estimated block
// cost.
type Plan = planner.Plan

// Decision is a planning outcome: the chosen plan plus all alternatives;
// Explain() formats it like a tiny EXPLAIN.
type Decision = planner.Decision

// SelectExecution reports an executed k-NN-Select plan: its neighbors and
// the blocks actually scanned.
type SelectExecution = planner.SelectExecution

// BatchExecution reports an executed batch plan: per-query neighbors and
// the total blocks actually scanned.
type BatchExecution = planner.BatchExecution

// BatchOptions tune PlanKNNSelectBatch.
type BatchOptions = planner.BatchOptions

// PlanKNNSelect plans a k-NN-Select with an optional filtering predicate:
// the paper's introduction example of arbitrating between a filter-first
// full scan and incremental distance browsing with the predicate applied
// on the fly.
func PlanKNNSelect(rel *Relation, q Point, k int, filter *Filter) (*Decision, error) {
	return planner.PlanKNNSelect(rel, geom.Point(q), k, filter)
}

// PlanKNNSelectInRegion plans "the k nearest points to q inside region":
// a range-first scan (exact cost from the Count-Index) competes with
// incremental distance browsing filtered to the region.
func PlanKNNSelectInRegion(rel *Relation, q Point, k int, region Rect) (*Decision, error) {
	return planner.PlanKNNSelectInRegion(rel, q, k, region)
}

// PlanKNNSelectBatch plans a batch of same-k k-NN-Selects against one
// relation: independent selects versus one shared k-NN-Join with the
// query points as the outer relation.
func PlanKNNSelectBatch(rel *Relation, queries []Point, k int, opt BatchOptions) (*Decision, error) {
	return planner.PlanKNNSelectBatch(rel, queries, k, opt)
}

// ExecuteSelect runs a k-NN-Select decision's chosen plan.
func ExecuteSelect(d *Decision) (*SelectExecution, error) { return planner.ExecuteSelect(d) }

// ExecuteBatch runs a batch decision's chosen plan.
func ExecuteBatch(d *Decision) (*BatchExecution, error) { return planner.ExecuteBatch(d) }
