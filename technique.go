package knncost

import (
	"knncost/internal/engine"
	"knncost/internal/planner"
)

// This file is the facade over the internal/engine technique registry: the
// named-technique surface of the library. The concrete constructors in
// estimate.go (NewStaircaseEstimator, NewCatalogMergeEstimator, ...) remain
// for callers that want full control over build options; resolution by name
// is for callers — CLIs, services, config files — whose technique choice is
// data, not code.

// TechniqueInfo describes one registered estimation technique.
type TechniqueInfo struct {
	// Name is the canonical registry name, e.g. "staircase-cc".
	Name string
	// Aliases also resolve to this technique.
	Aliases []string
	// Summary is a one-line description.
	Summary string
	// Preprocessed reports whether the technique builds a preprocessing
	// artifact (built once per Index, on first use) or works query-time.
	Preprocessed bool
}

// SelectTechniques lists the registered k-NN-Select estimation techniques
// in canonical order.
func SelectTechniques() []TechniqueInfo {
	ts := engine.SelectTechniques()
	out := make([]TechniqueInfo, len(ts))
	for i, t := range ts {
		out[i] = TechniqueInfo{Name: t.Name, Aliases: t.Aliases, Summary: t.Summary, Preprocessed: t.Preprocessed}
	}
	return out
}

// JoinTechniques lists the registered k-NN-Join estimation techniques in
// canonical order.
func JoinTechniques() []TechniqueInfo {
	ts := engine.JoinTechniques()
	out := make([]TechniqueInfo, len(ts))
	for i, t := range ts {
		out[i] = TechniqueInfo{Name: t.Name, Aliases: t.Aliases, Summary: t.Summary, Preprocessed: t.Preprocessed}
	}
	return out
}

// engine returns the Index's engine relation, created on first use with the
// repository-default build options. Every technique artifact resolved
// through it is built at most once per Index.
func (ix *Index) engine() *engine.Relation {
	ix.engOnce.Do(func() {
		ix.eng = engine.NewRelationWithCount("index", ix.tree, ix.count, engine.BuildOptions{})
	})
	return ix.eng
}

// SelectEstimatorFor resolves a registered select technique by name (or
// alias) against this index, building — and caching, once per Index — any
// preprocessing artifact the technique needs. Unknown names are an error
// listing what is registered.
func (ix *Index) SelectEstimatorFor(technique string) (SelectEstimator, error) {
	return ix.engine().SelectEstimator(technique)
}

// JoinEstimatorFor resolves a registered join technique by name for the
// pair (ix ⋉ inner). Pair artifacts (Catalog-Merge) are cached per inner
// index.
func (ix *Index) JoinEstimatorFor(technique string, inner *Index) (JoinEstimator, error) {
	return ix.engine().JoinEstimator(technique, inner.engine())
}

// NewRelationTechnique wraps an index as a planner relation whose select
// estimator is resolved from the technique registry by name.
func NewRelationTechnique(name string, ix *Index, technique string) (*Relation, error) {
	return planner.NewRelationTechnique(name, ix.tree, technique, engine.BuildOptions{})
}

// TechniqueEstimate is one entry of a SelectTechniqueEstimates sweep.
type TechniqueEstimate = planner.TechniqueEstimate

// SelectTechniqueEstimates estimates one k-NN-Select with every registered
// select technique — a side-by-side comparison in one call.
func SelectTechniqueEstimates(rel *Relation, q Point, k int) []TechniqueEstimate {
	return planner.SelectTechniqueEstimates(rel, q, k)
}
